// Metrics registry: named Counter / Gauge / Histogram instruments with a
// lock-cheap update path (plain relaxed atomics) and snapshot-to-text /
// snapshot-to-JSON export.
//
// The paper's bottleneck argument (Eq. 1 vs Eq. 2) is about *which* stage
// of the compaction pipeline limits bandwidth; this registry is where the
// executors publish the stall/occupancy counters that answer it at run
// time (see docs/OBSERVABILITY.md for every registered name).
//
// Concurrency contract: Register* serializes on a mutex and is idempotent
// per (name, kind) — calling it again returns the same instrument, so
// executors re-register on every run instead of threading instrument
// pointers around. Updates on the returned instruments are wait-free
// (Counter/Gauge) or take a short per-instrument mutex (Histogram).
// Instrument pointers remain valid for the registry's lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/histogram.h"

namespace pipelsm::obs {

// Monotonically increasing event/total counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time value; UpdateMax keeps a high-watermark across threads.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }

  void UpdateMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Distribution instrument over util/histogram's exponential buckets.
class HistogramMetric {
 public:
  void Observe(double v) {
    std::lock_guard<std::mutex> lock(mu_);
    histogram_.Add(v);
  }

  Histogram Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return histogram_;
  }

 private:
  mutable std::mutex mu_;
  Histogram histogram_;
};

// One instrument's point-in-time state, as captured by
// MetricsRegistry::Snapshot(). The exporters (Prometheus exposition,
// the time-series ring) consume these instead of reaching into the
// registry, so a snapshot is coherent per instrument and the exporters
// never hold the registry mutex while formatting.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  std::string help;
  Kind kind = Kind::kCounter;
  uint64_t counter = 0;   // kind == kCounter
  int64_t gauge = 0;      // kind == kGauge
  Histogram histogram;    // kind == kHistogram
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Each returns the instrument registered under `name`, creating it on
  // first use. Returns nullptr if `name` is already registered as a
  // different kind (a naming bug — callers may assert on it).
  Counter* RegisterCounter(const std::string& name, const std::string& help);
  Gauge* RegisterGauge(const std::string& name, const std::string& help);
  HistogramMetric* RegisterHistogram(const std::string& name,
                                     const std::string& help);

  // One "name value" line per instrument, sorted by name.
  std::string ToString() const;

  // {"counters":{...},"gauges":{...},"histograms":{name:{count,avg,p50,
  // p95,p99,max}}} — the payload of DB::GetProperty("pipelsm.metrics").
  std::string ToJson() const;

  // Every instrument's current value, sorted by name (the registry's
  // iteration order). Counter/gauge reads are relaxed-atomic; each
  // histogram is copied under its own mutex.
  std::vector<MetricSample> Snapshot() const;

  size_t size() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    size_t index;  // into the deque for its kind
    std::string help;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  // Deques: growth never invalidates handed-out instrument pointers.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<HistogramMetric> histograms_;
};

}  // namespace pipelsm::obs
