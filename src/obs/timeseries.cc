#include "src/obs/timeseries.h"

#include <cinttypes>
#include <cstdio>

namespace pipelsm::obs {

TimeSeriesRing::TimeSeriesRing(size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

uint32_t TimeSeriesRing::InternLocked(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

void TimeSeriesRing::Sample(const MetricsRegistry& registry,
                            uint64_t t_micros) {
  // Snapshot outside the ring mutex: the registry has its own lock, and
  // histogram copies are the expensive part.
  const std::vector<MetricSample> snapshot = registry.Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  Sample_ sample;
  sample.t_micros = t_micros;
  sample.values.reserve(snapshot.size());
  for (const MetricSample& s : snapshot) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        sample.values.emplace_back(InternLocked(s.name),
                                   static_cast<int64_t>(s.counter));
        break;
      case MetricSample::Kind::kGauge:
        sample.values.emplace_back(InternLocked(s.name), s.gauge);
        break;
      case MetricSample::Kind::kHistogram:
        sample.values.emplace_back(
            InternLocked(s.name + ".count"),
            static_cast<int64_t>(s.histogram.Num()));
        break;
    }
  }
  samples_.push_back(std::move(sample));
  while (samples_.size() > capacity_) samples_.pop_front();
}

size_t TimeSeriesRing::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

std::string TimeSeriesRing::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{\"capacity\":%zu,\"samples\":[",
                capacity_);
  out.append(buf);
  bool first_sample = true;
  for (const Sample_& s : samples_) {
    if (!first_sample) out.push_back(',');
    first_sample = false;
    std::snprintf(buf, sizeof(buf), "{\"t_micros\":%" PRIu64 ",\"values\":{",
                  s.t_micros);
    out.append(buf);
    bool first_value = true;
    for (const auto& [id, v] : s.values) {
      if (!first_value) out.push_back(',');
      first_value = false;
      // Instrument names are dotted identifiers (registry convention);
      // no JSON-hostile bytes to escape.
      out.push_back('"');
      out.append(names_[id]);
      out.append("\":");
      std::snprintf(buf, sizeof(buf), "%" PRId64, v);
      out.append(buf);
    }
    out.append("}}");
  }
  out.append("]}");
  return out;
}

}  // namespace pipelsm::obs
