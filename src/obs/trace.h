// TraceCollector: per-sub-task stage spans dumped as Chrome trace_event
// JSON, loadable in chrome://tracing or https://ui.perfetto.dev.
//
// Each compaction (or flush) is one trace "process" (pid); each pipeline
// lane — the S7 write stage, every S1 reader, every S2–S6 compute worker
// — is one "thread" (tid) inside it. A PCP run therefore renders exactly
// like the paper's Fig. 4 pipeline diagram: sub-task boxes marching
// through the stages, with "stall" spans showing where a lane sat blocked
// on an inter-stage queue. The lane whose row has no gaps is the
// bottleneck stage of Eq. 2.
//
// Thread-safety: all methods may be called concurrently; spans are
// appended under one mutex, which is fine at sub-task granularity (a few
// spans per ~512 KB of compaction input — nowhere near a hot path).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/status.h"
#include "src/util/stopwatch.h"

namespace pipelsm::obs {

class TraceCollector {
 public:
  TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  // Nanoseconds since the collector was created (the trace epoch).
  // Span begin/end timestamps must come from this clock.
  uint64_t NowNanos() const;

  // Allocates a trace process id for one job (compaction, flush, ...)
  // and records its display name.
  uint32_t BeginJob(const std::string& name);

  // Names one lane (trace thread) of a job, e.g. "S1 read 0".
  void SetLaneName(uint32_t pid, uint32_t lane, const std::string& name);

  // Records one complete span. `category` is a stable literal ("read",
  // "compute", "write", "stall"); `seq` is the sub-task sequence number
  // (emitted into args so spans of one sub-task can be joined up), or
  // kNoSeq for spans not tied to a sub-task.
  static constexpr uint64_t kNoSeq = ~uint64_t{0};
  void AddSpan(uint32_t pid, uint32_t lane, const char* name,
               const char* category, uint64_t start_ns, uint64_t end_ns,
               uint64_t seq);

  size_t span_count() const;

  // The full trace as Chrome trace_event JSON ({"traceEvents":[...]}).
  std::string ToJson() const;

  // Writes ToJson() to `path` on the host filesystem (deliberately not
  // through an Env: traces must land where chrome://tracing can open
  // them even when the DB itself runs on a SimEnv).
  Status WriteFile(const std::string& path) const;

 private:
  struct Span {
    std::string name;
    const char* category;
    uint32_t pid;
    uint32_t lane;
    uint64_t start_ns;
    uint64_t dur_ns;
    uint64_t seq;
  };

  mutable std::mutex mu_;
  uint32_t next_pid_ = 1;
  std::vector<Span> spans_;
  std::map<uint32_t, std::string> job_names_;                      // by pid
  std::map<std::pair<uint32_t, uint32_t>, std::string> lane_names_;
  Stopwatch epoch_;
};

// RAII span: measures construction→destruction on `collector`'s clock.
// A null collector makes it a no-op, so call sites stay unconditional.
class TraceSpan {
 public:
  TraceSpan(TraceCollector* collector, uint32_t pid, uint32_t lane,
            const char* name, const char* category,
            uint64_t seq = TraceCollector::kNoSeq)
      : collector_(collector),
        pid_(pid),
        lane_(lane),
        name_(name),
        category_(category),
        seq_(seq),
        start_ns_(collector != nullptr ? collector->NowNanos() : 0) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (collector_ != nullptr) {
      collector_->AddSpan(pid_, lane_, name_, category_, start_ns_,
                          collector_->NowNanos(), seq_);
    }
  }

 private:
  TraceCollector* const collector_;
  const uint32_t pid_;
  const uint32_t lane_;
  const char* const name_;
  const char* const category_;
  const uint64_t seq_;
  const uint64_t start_ns_;
};

}  // namespace pipelsm::obs
