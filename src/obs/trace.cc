#include "src/obs/trace.h"

#include <cinttypes>
#include <cstdio>

namespace pipelsm::obs {

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
      continue;
    }
    out->push_back(c);
  }
  out->push_back('"');
}

// trace_event timestamps are microseconds; keep nanosecond precision as
// a 3-decimal fraction (both chrome://tracing and Perfetto accept it).
void AppendMicros(uint64_t nanos, std::string* out) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", nanos / 1000,
                static_cast<unsigned>(nanos % 1000));
  out->append(buf);
}

}  // namespace

TraceCollector::TraceCollector() = default;

uint64_t TraceCollector::NowNanos() const { return epoch_.ElapsedNanos(); }

uint32_t TraceCollector::BeginJob(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t pid = next_pid_++;
  job_names_[pid] = name;
  return pid;
}

void TraceCollector::SetLaneName(uint32_t pid, uint32_t lane,
                                 const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  lane_names_[{pid, lane}] = name;
}

void TraceCollector::AddSpan(uint32_t pid, uint32_t lane, const char* name,
                             const char* category, uint64_t start_ns,
                             uint64_t end_ns, uint64_t seq) {
  const uint64_t dur = end_ns > start_ns ? end_ns - start_ns : 0;
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(Span{name, category, pid, lane, start_ns, dur, seq});
}

size_t TraceCollector::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::string TraceCollector::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[96];
  bool first = true;
  auto comma = [&] {
    if (!first) out.push_back(',');
    first = false;
  };

  for (const auto& [pid, name] : job_names_) {
    comma();
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":%u,\"tid\":0,"
                  "\"name\":\"process_name\",\"args\":{\"name\":",
                  pid);
    out.append(buf);
    AppendEscaped(name, &out);
    out.append("}}");
  }
  for (const auto& [key, name] : lane_names_) {
    comma();
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
                  "\"name\":\"thread_name\",\"args\":{\"name\":",
                  key.first, key.second);
    out.append(buf);
    AppendEscaped(name, &out);
    out.append("}}");
  }

  for (const Span& span : spans_) {
    comma();
    std::snprintf(buf, sizeof(buf), "{\"ph\":\"X\",\"pid\":%u,\"tid\":%u,",
                  span.pid, span.lane);
    out.append(buf);
    out.append("\"name\":");
    AppendEscaped(span.name, &out);
    out.append(",\"cat\":");
    AppendEscaped(span.category, &out);
    out.append(",\"ts\":");
    AppendMicros(span.start_ns, &out);
    out.append(",\"dur\":");
    AppendMicros(span.dur_ns, &out);
    if (span.seq != kNoSeq) {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"seq\":%" PRIu64 "}",
                    span.seq);
      out.append(buf);
    }
    out.append("}");
  }
  out.append("]}");
  return out;
}

Status TraceCollector::WriteFile(const std::string& path) const {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return Status::IOError("short write to trace file " + path);
  }
  return Status::OK();
}

}  // namespace pipelsm::obs
