#include "src/obs/logger.h"

#include <cinttypes>
#include <cstdio>
#include <vector>

namespace pipelsm::obs {

Logger::~Logger() = default;

void Log(Logger* logger, const char* format, ...) {
  if (logger == nullptr) return;
  std::va_list ap;
  va_start(ap, format);
  logger->Logv(format, ap);
  va_end(ap);
}

namespace {

class FileLogger final : public Logger {
 public:
  FileLogger(Env* env, std::unique_ptr<WritableFile> file)
      : env_(env), file_(std::move(file)), epoch_micros_(env->NowMicros()) {}

  ~FileLogger() override { file_->Close(); }

  void Logv(const char* format, std::va_list ap) override {
    // Format outside the lock; only the Append is serialized.
    char stack_buf[512];
    std::vector<char> heap_buf;
    char* buf = stack_buf;
    size_t cap = sizeof(stack_buf);

    char header[32];
    const uint64_t t = env_->NowMicros() - epoch_micros_;
    const int header_len =
        std::snprintf(header, sizeof(header), "%" PRIu64 ".%06u ",
                      t / 1000000, static_cast<unsigned>(t % 1000000));

    std::va_list backup;
    va_copy(backup, ap);
    int len = std::vsnprintf(buf, cap, format, ap);
    if (len < 0) {
      va_end(backup);
      return;
    }
    if (static_cast<size_t>(len) >= cap) {
      heap_buf.resize(len + 1);
      buf = heap_buf.data();
      cap = heap_buf.size();
      len = std::vsnprintf(buf, cap, format, backup);
    }
    va_end(backup);
    if (len < 0) return;

    std::string line;
    line.reserve(header_len + len + 1);
    line.append(header, header_len);
    line.append(buf, len);
    if (line.empty() || line.back() != '\n') line.push_back('\n');

    std::lock_guard<std::mutex> lock(mu_);
    file_->Append(line);
    file_->Flush();
  }

 private:
  Env* const env_;
  std::unique_ptr<WritableFile> file_;
  const uint64_t epoch_micros_;
  std::mutex mu_;
};

}  // namespace

Status NewFileLogger(Env* env, const std::string& fname,
                     std::unique_ptr<Logger>* result) {
  result->reset();
  std::unique_ptr<WritableFile> file;
  Status s = env->NewWritableFile(fname, &file);
  if (!s.ok()) return s;
  result->reset(new FileLogger(env, std::move(file)));
  return Status::OK();
}

}  // namespace pipelsm::obs
