// EventListener: push-based observability (RocksDB-style callbacks).
//
// Where PR 1's metrics registry and trace collector are *pull* surfaces —
// somebody has to ask for a snapshot — listeners are *pushed* to as the
// pipeline runs: the builder announces every memtable dump, the
// compaction executors announce every job (with the measured per-step
// S1–S7 times the paper's Eqs. 1–7 consume), and the write path announces
// every backpressure transition. The DB itself installs one internal
// listener that turns the stream into info-log lines and feeds the online
// bottleneck advisor (src/obs/advisor.h); user listeners on
// Options::listeners ride the same dispatch.
//
// Threading contract: callbacks fire synchronously on whichever thread
// produced the event — the background compaction thread for flush and
// compaction events, a writer thread for stall events (with the DB mutex
// HELD). Listeners must therefore be fast, must tolerate concurrent
// invocation, and must never call back into the DB. Begin always precedes
// Completed for the same job_id, and job ids are allocated monotonically
// per DB instance (flushes and compactions draw from one sequence).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"
#include "src/util/stopwatch.h"

namespace pipelsm::obs {

// One memtable dump (minor compaction). Fired from BuildTable /
// BuildTablePipelined: Begin before the first block is built (only
// job_id / file_number / pipelined are meaningful), Completed after the
// output file is finished and verified.
struct FlushJobInfo {
  uint64_t job_id = 0;
  uint64_t file_number = 0;  // table file the memtable dumps into
  bool pipelined = false;    // Options::pipelined_flush path
  uint64_t output_bytes = 0; // final file size (Completed only)
  uint64_t entries = 0;      // internal keys written (Completed only)
  uint64_t micros = 0;       // wall time of the dump (Completed only)
  Status status;             // Completed only
};

// One major compaction. Fired from the executors (all four procedures):
// Begin after planning — so subtasks is already the sub-task count —
// and Completed after the write stage closed, with the measured
// StepProfile (per-step S1–S7 nanos and bytes) and the final status.
struct CompactionJobInfo {
  uint64_t job_id = 0;
  int level = 0;             // input level
  int output_level = 0;      // install level (level for a self-merge)
  const char* executor = ""; // "SCP" / "PCP" / "S-PPCP" / "C-PPCP"
  // Which CompactionPicker policy shaped this job (docs/COMPACTION.md)
  // and its predicted bytes-written amplification at pick time.
  const char* style = "leveled";
  double predicted_write_amp = 1.0;
  // Number of disjoint key-range sub-jobs the DB split this compaction
  // into (1 = not sub-compacted). When > 1, Begin fires before planning
  // with subtasks == 0 and Completed carries the merged totals.
  int subcompactions = 1;
  // The CompactionScheduler's per-job verdict (src/compaction/scheduler.h),
  // filled by the DB before the executor runs, so Begin already carries
  // it: the parallelism the executor was handed, whether the choice came
  // from the adaptive control loop (vs the static Options config), and
  // the scheduler's one-line rationale.
  int read_parallelism = 1;
  int compute_parallelism = 1;
  bool adaptive = false;
  std::string scheduler_rationale;
  int input_files = 0;
  uint64_t input_bytes = 0;  // compressed bytes across input tables
  uint64_t subtasks = 0;
  uint64_t output_bytes = 0; // raw bytes produced (Completed only)
  StepProfile profile;       // measured S1..S7 nanos/bytes (Completed only)
  uint64_t wall_micros = 0;  // end-to-end run time (Completed only)
  Status status;             // Completed only
};

// Write-path backpressure state (MakeRoomForWrite). kDelayed is the 1 ms
// L0 slowdown; kStopped is a full pause on memtable/L0 limits.
enum class WriteStallCondition { kNormal = 0, kDelayed = 1, kStopped = 2 };

const char* WriteStallConditionName(WriteStallCondition condition);

struct WriteStallInfo {
  WriteStallCondition condition = WriteStallCondition::kNormal;
  WriteStallCondition previous = WriteStallCondition::kNormal;
};

// Background failure lifecycle (docs/FAULT_INJECTION.md). Fired with the
// DB mutex HELD, so handlers must not block or call back into the DB.
// A non-sticky event means the failure consumed one retry and the work
// will be re-attempted after backoff; a sticky event means retries are
// exhausted (or the error is not retryable) and the DB is read-only
// until Resume().
struct BackgroundErrorInfo {
  Status status;
  const char* source = "";  // "flush" | "compaction" | "wal" | "resume"
  int attempt = 0;          // retries consumed so far, including this one
  int max_attempts = 0;     // Options::max_background_retries
  bool sticky = false;      // true: DB entered the background-error state
};

// Fired by a successful DB::Resume() with the error it cleared.
struct ErrorRecoveryInfo {
  Status old_error;
};

// Base class with no-op defaults: override only the hooks you need.
class EventListener {
 public:
  virtual ~EventListener();

  virtual void OnFlushBegin(const FlushJobInfo& /*info*/) {}
  virtual void OnFlushCompleted(const FlushJobInfo& /*info*/) {}
  virtual void OnCompactionBegin(const CompactionJobInfo& /*info*/) {}
  virtual void OnCompactionCompleted(const CompactionJobInfo& /*info*/) {}
  // Fired on every transition; called with the DB mutex held, so this one
  // in particular must not block.
  virtual void OnWriteStallChange(const WriteStallInfo& /*info*/) {}
  // Both fired with the DB mutex held (see BackgroundErrorInfo above).
  virtual void OnBackgroundError(const BackgroundErrorInfo& /*info*/) {}
  virtual void OnErrorRecovered(const ErrorRecoveryInfo& /*info*/) {}
};

using EventListeners = std::vector<EventListener*>;

}  // namespace pipelsm::obs
