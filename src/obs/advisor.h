// BottleneckAdvisor: the paper's analytic model (Eqs. 1–7, §III) run
// online against the live system.
//
// Every completed compaction's measured StepProfile is folded into an
// exponentially decayed running per-sub-task step-time profile (recent
// jobs dominate, so the advisor tracks workload shifts). On demand it
// evaluates the model on that profile and reports, as JSON:
//
//   * which pipeline stage (read / compute / write) is the Eq. 2
//     bottleneck, and whether the regime is I/O- or CPU-bound;
//   * the predicted bandwidth of every procedure — B_scp (Eq. 1),
//     B_pcp (Eq. 2), B_s-ppcp (Eq. 4) and B_c-ppcp (Eq. 6) at their
//     saturation k — next to the bandwidth actually measured;
//   * the recommended procedure and parallelism k: the paper's §III-C
//     prescription of adding parallelism to whichever stage limits Eq. 2.
//
// Exposed as DB::GetProperty("pipelsm.advisor"); the DB feeds it through
// its internal EventListener. Thread-safe: AddJob and ToJson may race.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "src/model/model.h"
#include "src/util/stopwatch.h"

namespace pipelsm::obs {

class BottleneckAdvisor {
 public:
  // `decay` is the weight of the newest job in the running profile
  // (0 < decay <= 1); 0.3 keeps ~the last half-dozen jobs relevant.
  explicit BottleneckAdvisor(double decay = 0.3);

  BottleneckAdvisor(const BottleneckAdvisor&) = delete;
  BottleneckAdvisor& operator=(const BottleneckAdvisor&) = delete;

  // Folds one completed job's measurements in. Jobs with zero sub-tasks
  // or zero wall time are ignored (nothing to average).
  void AddJob(const StepProfile& profile);

  uint64_t jobs() const;

  // The decayed per-sub-task step times the model is evaluated on.
  model::StepTimes Profile() const;

  // The advisor report (see docs/OBSERVABILITY.md "Bottleneck advisor"
  // for the schema). Always valid JSON; before the first job it carries
  // {"jobs":0} and empty predictions.
  std::string ToJson() const;

 private:
  const double decay_;
  mutable std::mutex mu_;
  uint64_t jobs_ = 0;
  model::StepTimes ema_;          // decayed per-sub-task step seconds
  double measured_wall_bps_ = 0;  // decayed input_bytes / wall_nanos
  double measured_seq_bps_ = 0;   // decayed Eq. 1 view (sum of steps)
};

}  // namespace pipelsm::obs
