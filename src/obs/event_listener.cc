#include "src/obs/event_listener.h"

namespace pipelsm::obs {

EventListener::~EventListener() = default;

const char* WriteStallConditionName(WriteStallCondition condition) {
  switch (condition) {
    case WriteStallCondition::kNormal:
      return "normal";
    case WriteStallCondition::kDelayed:
      return "delayed";
    case WriteStallCondition::kStopped:
      return "stopped";
  }
  return "unknown";
}

}  // namespace pipelsm::obs
