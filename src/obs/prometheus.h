// Prometheus text exposition (version 0.0.4) for the metrics registry —
// the /metrics payload of the admin HTTP endpoint (docs/OBSERVABILITY.md
// "Admin endpoint & Prometheus exposition").
//
// The registry's dotted instrument names ("server.conns_total") become
// prometheus metric families ("pipelsm_server_conns_total"); an
// exposition is built from one or more registries, each tagged with a
// label set — the fleet observability plane renders every shard engine's
// registry with {shard="N"} plus the fleet registry (arbiter + server
// instruments) unlabeled, so one scrape carries per-shard granularity.
//
// Instrument mapping:
//   Counter    -> `counter` family, one sample per label set
//   Gauge      -> `gauge` family
//   Histogram  -> `summary` family: quantile-labeled samples at
//                 quantile="0.5"/"0.95"/"0.99" plus `_sum` and `_count`
// Embedded shard names ("server.shard3.write_ops") are folded into a
// shard label on the common family, so per-shard fleet counters query
// like any other shard-labeled series.
//
// Families are emitted sorted by name, each preceded by exactly one
// # HELP / # TYPE pair; label values are escaped per the exposition
// format (backslash, double-quote, newline). A scrape therefore passes
// promtool-style conformance checks (the CI obs-smoke job runs one).
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"

namespace pipelsm::obs {

// "server.group_commit.commits" -> "pipelsm_server_group_commit_commits".
// Any byte outside [a-zA-Z0-9_:] becomes '_'; a leading digit gets a '_'
// prefix. Names are already prefixed "pipelsm_" by the exposition.
std::string PrometheusMetricName(const std::string& dotted);

// Escapes `value` for use inside a label value: \ -> \\, " -> \", and
// newline -> \n.
void AppendPrometheusLabelValue(const std::string& value, std::string* out);

// A label set, ordered as given (e.g. {{"shard", "0"}}).
using PrometheusLabels = std::vector<std::pair<std::string, std::string>>;

class PrometheusExposition {
 public:
  PrometheusExposition() = default;

  // Adds every instrument of `registry`, with `labels` on each sample.
  // Instruments named "<prefix>.shard<N>.<rest>" are folded into family
  // "<prefix>.<rest>" with a shard="N" label appended (unless `labels`
  // already carries a shard key).
  void AddRegistry(const MetricsRegistry& registry,
                   const PrometheusLabels& labels);

  // Adds one synthetic gauge sample (used for derived series such as the
  // advisor regime, which are not registry instruments).
  void AddGauge(const std::string& dotted_name, const std::string& help,
                const PrometheusLabels& labels, double value);
  void AddCounter(const std::string& dotted_name, const std::string& help,
                  const PrometheusLabels& labels, double value);

  // The exposition document: families sorted by name, one HELP/TYPE pair
  // per family, then its samples in insertion order. Text ends with a
  // newline (required by the format).
  std::string Render() const;

 private:
  struct Family {
    std::string help;
    const char* type = "gauge";
    std::vector<std::string> lines;  // complete sample lines, no '\n'
  };

  Family* Upsert(const std::string& family_name, const std::string& help,
                 const char* type);
  void AddSample(Family* family, const std::string& family_name,
                 const PrometheusLabels& labels, const char* extra_key,
                 const std::string& extra_value, const char* suffix,
                 double value);

  std::map<std::string, Family> families_;
};

}  // namespace pipelsm::obs
