#include "src/obs/advisor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pipelsm::obs {

namespace {

// All advisor numbers are finite by construction, but a denormal device
// profile (zero bandwidth) can produce inf/NaN ratios; clamp to 0 so the
// output stays parseable JSON (inf/NaN are not JSON).
void AppendNumber(std::string* out, double v, const char* fmt = "%.3f") {
  char buf[64];
  if (!std::isfinite(v)) v = 0;
  std::snprintf(buf, sizeof(buf), fmt, v);
  out->append(buf);
}

void AppendField(std::string* out, const char* key) {
  out->push_back('"');
  out->append(key);
  out->append("\":");
}

double ToMbps(double bps) { return bps / (1024.0 * 1024.0); }

}  // namespace

BottleneckAdvisor::BottleneckAdvisor(double decay)
    : decay_(std::clamp(decay, 1e-3, 1.0)) {}

void BottleneckAdvisor::AddJob(const StepProfile& profile) {
  if (profile.subtasks == 0 || profile.wall_nanos == 0) return;
  const model::StepTimes sample = model::StepTimes::FromProfile(profile);
  const double wall_bps = profile.WallBandwidth();
  const double seq_bps = profile.SequentialBandwidth();

  std::lock_guard<std::mutex> lock(mu_);
  if (jobs_ == 0) {
    ema_ = sample;
    measured_wall_bps_ = wall_bps;
    measured_seq_bps_ = seq_bps;
  } else {
    const double keep = 1.0 - decay_;
    for (int i = 0; i < kNumSteps; i++) {
      ema_.seconds[i] = keep * ema_.seconds[i] + decay_ * sample.seconds[i];
    }
    ema_.subtask_bytes =
        keep * ema_.subtask_bytes + decay_ * sample.subtask_bytes;
    measured_wall_bps_ = keep * measured_wall_bps_ + decay_ * wall_bps;
    measured_seq_bps_ = keep * measured_seq_bps_ + decay_ * seq_bps;
  }
  jobs_++;
}

uint64_t BottleneckAdvisor::jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_;
}

model::StepTimes BottleneckAdvisor::Profile() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ema_;
}

std::string BottleneckAdvisor::ToJson() const {
  model::StepTimes t;
  uint64_t jobs;
  double wall_bps, seq_bps;
  {
    std::lock_guard<std::mutex> lock(mu_);
    t = ema_;
    jobs = jobs_;
    wall_bps = measured_wall_bps_;
    seq_bps = measured_seq_bps_;
  }

  std::string out = "{";
  AppendField(&out, "jobs");
  AppendNumber(&out, static_cast<double>(jobs), "%.0f");
  if (jobs == 0) {
    out.append(",\"note\":\"no completed compactions yet\"}");
    return out;
  }

  const double read = t.read(), compute = t.compute(), write = t.write();
  // The Eq. 2 max{} argument, named: which stage limits the pipeline.
  const char* bottleneck = "read";
  if (compute >= read && compute >= write) {
    bottleneck = "compute";
  } else if (write >= read && write >= compute) {
    bottleneck = "write";
  }
  const bool cpu_bound = model::IsCpuBound(t);

  out.append(",");
  AppendField(&out, "subtask_bytes");
  AppendNumber(&out, t.subtask_bytes, "%.0f");
  out.append(",\"step_ms\":{");
  AppendField(&out, "read");
  AppendNumber(&out, read * 1e3);
  out.append(",");
  AppendField(&out, "compute");
  AppendNumber(&out, compute * 1e3);
  out.append(",");
  AppendField(&out, "write");
  AppendNumber(&out, write * 1e3);
  out.append("},");
  AppendField(&out, "bottleneck");
  out.append("\"").append(bottleneck).append("\",");
  AppendField(&out, "regime");
  out.append(cpu_bound ? "\"cpu-bound\"" : "\"io-bound\"");

  // Predictions: Eqs. 1/2 directly; Eqs. 4/6 at the smallest k that
  // saturates (§III-C) — beyond it, added parallelism buys nothing.
  const int sppcp_k = model::SppcpSaturationDisks(t);
  const int cppcp_k = model::CppcpSaturationThreads(t);
  out.append(",\"predicted_mbps\":{");
  AppendField(&out, "scp");
  AppendNumber(&out, ToMbps(model::ScpBandwidth(t)));
  out.append(",");
  AppendField(&out, "pcp");
  AppendNumber(&out, ToMbps(model::PcpBandwidth(t)));
  out.append(",\"sppcp\":{\"k\":");
  AppendNumber(&out, sppcp_k, "%.0f");
  out.append(",\"mbps\":");
  AppendNumber(&out, ToMbps(model::SppcpBandwidth(t, sppcp_k)));
  out.append("},\"cppcp\":{\"k\":");
  AppendNumber(&out, cppcp_k, "%.0f");
  out.append(",\"mbps\":");
  AppendNumber(&out, ToMbps(model::CppcpBandwidth(t, cppcp_k)));
  out.append("}}");

  out.append(",\"measured_mbps\":{");
  AppendField(&out, "wall");
  AppendNumber(&out, ToMbps(wall_bps));
  out.append(",");
  AppendField(&out, "sequential");
  AppendNumber(&out, ToMbps(seq_bps));
  out.append("},");
  // How far the Eq. 2 prediction sits from the bandwidth the pipelined
  // executor actually achieved (the paper reports ~10%).
  AppendField(&out, "pcp_model_error_pct");
  const double pcp_pred = model::PcpBandwidth(t);
  AppendNumber(&out, wall_bps > 0
                         ? std::fabs(pcp_pred - wall_bps) / wall_bps * 100.0
                         : 0.0,
               "%.1f");

  // §III-C prescription: add parallelism to the limiting stage. A
  // compute bottleneck wants C-PPCP compute workers (Eq. 6); an I/O
  // bottleneck wants S-PPCP striping (Eq. 4). When neither parallel
  // variant beats plain PCP by a margin, say so instead of churning.
  // The same model::Prescribe drives the adaptive compaction scheduler
  // (src/compaction/scheduler.h), so this report IS the control loop's
  // input, not a parallel reimplementation of it.
  const model::Prescription rec = model::Prescribe(t);
  out.append(",\"recommendation\":{");
  AppendField(&out, "procedure");
  out.append("\"")
      .append(model::PrescriptionProcedureName(rec.procedure))
      .append("\",");
  AppendField(&out, "k");
  AppendNumber(&out, rec.k, "%.0f");
  out.append(",");
  AppendField(&out, "ideal_speedup_vs_pcp");
  AppendNumber(&out, rec.gain_vs_pcp, "%.2f");
  out.append(",");
  AppendField(&out, "reason");
  out.push_back('"');
  out.append(rec.reason);
  out.append("\"}}");
  return out;
}

}  // namespace pipelsm::obs
