#include "src/obs/prometheus.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace pipelsm::obs {

namespace {

// Sample values: integers render without an exponent so counters stay
// exact; everything else gets shortest-round-trip-ish %.17g trimmed to
// %g precision (quantiles are estimates anyway).
void AppendValue(double v, std::string* out) {
  if (std::isnan(v)) {
    out->append("NaN");
    return;
  }
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out->append(buf);
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out->append(buf);
}

// HELP text escaping: backslash and newline (the format's only two).
void AppendHelpEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    if (c == '\\') {
      out->append("\\\\");
    } else if (c == '\n') {
      out->append("\\n");
    } else {
      out->push_back(c);
    }
  }
}

// Splits "prefix.shard<N>.rest" into family "prefix.rest" + shard "N".
// Returns false when the name has no embedded shard component.
bool FoldShardComponent(const std::string& name, std::string* folded,
                        std::string* shard) {
  size_t pos = 0;
  while ((pos = name.find(".shard", pos)) != std::string::npos) {
    size_t digits = pos + 6;
    size_t end = digits;
    while (end < name.size() && std::isdigit(
               static_cast<unsigned char>(name[end]))) {
      end++;
    }
    if (end > digits && end < name.size() && name[end] == '.') {
      *folded = name.substr(0, pos) + name.substr(end);
      *shard = name.substr(digits, end - digits);
      return true;
    }
    pos = end;
  }
  return false;
}

bool HasLabelKey(const PrometheusLabels& labels, const char* key) {
  for (const auto& [k, v] : labels) {
    if (k == key) return true;
  }
  return false;
}

}  // namespace

std::string PrometheusMetricName(const std::string& dotted) {
  std::string out;
  out.reserve(dotted.size() + 1);
  for (char c : dotted) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

void AppendPrometheusLabelValue(const std::string& value, std::string* out) {
  for (char c : value) {
    switch (c) {
      case '\\':
        out->append("\\\\");
        break;
      case '"':
        out->append("\\\"");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        out->push_back(c);
    }
  }
}

PrometheusExposition::Family* PrometheusExposition::Upsert(
    const std::string& family_name, const std::string& help,
    const char* type) {
  Family& f = families_[family_name];
  if (f.help.empty()) f.help = help;
  f.type = type;
  return &f;
}

void PrometheusExposition::AddSample(Family* family,
                                     const std::string& family_name,
                                     const PrometheusLabels& labels,
                                     const char* extra_key,
                                     const std::string& extra_value,
                                     const char* suffix, double value) {
  std::string line = family_name;
  line.append(suffix);
  const bool has_extra = extra_key != nullptr;
  if (!labels.empty() || has_extra) {
    line.push_back('{');
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) line.push_back(',');
      first = false;
      line.append(PrometheusMetricName(k));
      line.append("=\"");
      AppendPrometheusLabelValue(v, &line);
      line.push_back('"');
    }
    if (has_extra) {
      if (!first) line.push_back(',');
      line.append(extra_key);
      line.append("=\"");
      AppendPrometheusLabelValue(extra_value, &line);
      line.push_back('"');
    }
    line.push_back('}');
  }
  line.push_back(' ');
  AppendValue(value, &line);
  family->lines.push_back(std::move(line));
}

void PrometheusExposition::AddRegistry(const MetricsRegistry& registry,
                                       const PrometheusLabels& labels) {
  for (const MetricSample& s : registry.Snapshot()) {
    std::string dotted = s.name;
    PrometheusLabels sample_labels = labels;
    std::string folded, shard;
    if (!HasLabelKey(labels, "shard") &&
        FoldShardComponent(s.name, &folded, &shard)) {
      dotted = folded;
      sample_labels.emplace_back("shard", shard);
    }
    const std::string family = "pipelsm_" + PrometheusMetricName(dotted);
    switch (s.kind) {
      case MetricSample::Kind::kCounter: {
        Family* f = Upsert(family, s.help, "counter");
        AddSample(f, family, sample_labels, nullptr, "", "",
                  static_cast<double>(s.counter));
        break;
      }
      case MetricSample::Kind::kGauge: {
        Family* f = Upsert(family, s.help, "gauge");
        AddSample(f, family, sample_labels, nullptr, "", "",
                  static_cast<double>(s.gauge));
        break;
      }
      case MetricSample::Kind::kHistogram: {
        Family* f = Upsert(family, s.help, "summary");
        const Histogram& h = s.histogram;
        // Percentile() returns 0 on an empty histogram; never emit a
        // literal `nan`, which breaks strict exposition parsers.
        AddSample(f, family, sample_labels, "quantile", "0.5", "",
                  h.Median());
        AddSample(f, family, sample_labels, "quantile", "0.95", "",
                  h.Percentile(95));
        AddSample(f, family, sample_labels, "quantile", "0.99", "",
                  h.Percentile(99));
        AddSample(f, family, sample_labels, nullptr, "", "_sum", h.Sum());
        AddSample(f, family, sample_labels, nullptr, "", "_count", h.Num());
        break;
      }
    }
  }
}

void PrometheusExposition::AddGauge(const std::string& dotted_name,
                                    const std::string& help,
                                    const PrometheusLabels& labels,
                                    double value) {
  const std::string family = "pipelsm_" + PrometheusMetricName(dotted_name);
  Family* f = Upsert(family, help, "gauge");
  AddSample(f, family, labels, nullptr, "", "", value);
}

void PrometheusExposition::AddCounter(const std::string& dotted_name,
                                      const std::string& help,
                                      const PrometheusLabels& labels,
                                      double value) {
  const std::string family = "pipelsm_" + PrometheusMetricName(dotted_name);
  Family* f = Upsert(family, help, "counter");
  AddSample(f, family, labels, nullptr, "", "", value);
}

std::string PrometheusExposition::Render() const {
  std::string out;
  for (const auto& [name, family] : families_) {
    out.append("# HELP ");
    out.append(name);
    out.push_back(' ');
    AppendHelpEscaped(family.help, &out);
    out.push_back('\n');
    out.append("# TYPE ");
    out.append(name);
    out.push_back(' ');
    out.append(family.type);
    out.push_back('\n');
    for (const std::string& line : family.lines) {
      out.append(line);
      out.push_back('\n');
    }
  }
  return out;
}

}  // namespace pipelsm::obs
