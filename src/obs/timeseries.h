// TimeSeriesRing: a bounded ring of periodic metrics-registry snapshots,
// behind DB::GetProperty("pipelsm.timeseries") (docs/OBSERVABILITY.md).
//
// Rates and deltas need two points in time; a scrapeless operator (or a
// one-shot tool like `pipelsm_top --once`) has only one. The DB's stats
// thread appends one sample per stats tick, so any consumer can compute
// write/read throughput, stall growth, or compaction progress from a
// single property fetch — no external state, no second poll.
//
// Each sample stores scalar values only: counters and gauges verbatim,
// histograms as their observation count (the component deltas care
// about; percentile history would need the full bucket vectors). Names
// are interned once, so a deep ring does not duplicate strings per tick.
//
// Thread-safe: Sample and ToJson may race (one mutex).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace pipelsm::obs {

class TimeSeriesRing {
 public:
  // `capacity` samples are retained; the oldest is dropped on overflow.
  explicit TimeSeriesRing(size_t capacity);

  TimeSeriesRing(const TimeSeriesRing&) = delete;
  TimeSeriesRing& operator=(const TimeSeriesRing&) = delete;

  // Appends one snapshot of `registry` stamped `t_micros` (caller's
  // clock; the DB passes Env::NowMicros()).
  void Sample(const MetricsRegistry& registry, uint64_t t_micros);

  size_t size() const;
  size_t capacity() const { return capacity_; }

  // {"capacity":C,"samples":[{"t_micros":T,"values":{"name":V,...}},...]}
  // Samples are oldest-first; histogram instruments appear as
  // "<name>.count". Always valid JSON ("samples":[] before any tick).
  std::string ToJson() const;

 private:
  struct Sample_ {
    uint64_t t_micros = 0;
    std::vector<std::pair<uint32_t, int64_t>> values;  // (name id, value)
  };

  uint32_t InternLocked(const std::string& name);

  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<std::string> names_;          // id -> name
  std::map<std::string, uint32_t> ids_;     // name -> id
  std::deque<Sample_> samples_;
};

}  // namespace pipelsm::obs
