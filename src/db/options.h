// Public DB options, including the paper's compaction-procedure knobs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/compress/codec.h"

namespace pipelsm {

class CompactionGovernor;
class Comparator;
class Env;
class FilterPolicy;
class Snapshot;

namespace obs {
class EventListener;
class Logger;
}  // namespace obs

namespace read {
class Cache;
}  // namespace read

// Which compaction executor drives major compactions (paper §III):
//   kSCP   — Sequential Compaction Procedure (the LevelDB baseline),
//   kPCP   — 3-stage Pipelined Compaction Procedure,
//   kSPPCP — Storage-Parallel PCP (stripe S1/S7 over multiple devices),
//   kCPPCP — Computation-Parallel PCP (k compute workers).
enum class CompactionMode { kSCP = 0, kPCP = 1, kSPPCP = 2, kCPPCP = 3 };

const char* CompactionModeName(CompactionMode mode);

// Which *picker* decides what gets compacted (docs/COMPACTION.md). The
// executor above decides HOW one job runs; the style decides WHICH files
// form a job and where the output lands — the axis Sarkar et al. show
// dominates write amplification:
//   kLeveled      — LevelDB size-ratio leveling: every level is one
//                   sorted run; level-L spills merge with the
//                   overlapping level-(L+1) files. Lowest space/read
//                   amplification, highest write amplification.
//   kTiered       — each level holds up to tiered_run_count overlapping
//                   sorted runs; a full level merges into ONE new run at
//                   the next level without rewriting resident data.
//                   Write amplification ~1 per level, read/space
//                   amplification grows with the run count.
//   kLazyLeveling — Dostoevsky's hybrid: tiered at the upper levels,
//                   leveled (single run) at the largest occupied level,
//                   so most merges stay cheap while scans and space
//                   stay bounded where most data lives.
enum class CompactionStyle { kLeveled = 0, kTiered = 1, kLazyLeveling = 2 };

const char* CompactionStyleName(CompactionStyle style);

struct Options {
  // -------- general --------
  // Comparator used to define the order of keys. Must be the same across
  // DB openings. nullptr = bytewise.
  const Comparator* comparator = nullptr;

  bool create_if_missing = false;
  bool error_if_exists = false;

  // If true, treat recoverable corruption (e.g. a bad WAL tail) as errors.
  bool paranoid_checks = false;

  // nullptr = Env::Posix().
  Env* env = nullptr;

  // -------- shape of the tree (paper §IV-A defaults) --------
  // Amount of data to build up in the memtable before converting to a
  // sorted on-disk file. Paper default: 4 MB.
  size_t write_buffer_size = 4 * 1024 * 1024;

  // Target SSTable size. Paper default: 2 MB.
  size_t max_file_size = 2 * 1024 * 1024;

  // Uncompressed data-block size. Paper default: 4 KB.
  size_t block_size = 4 * 1024;

  int block_restart_interval = 16;

  // Level-(L+1) holds level_size_multiplier times more data than level L.
  int level_size_multiplier = 10;

  // Number of open tables kept in the table cache.
  int max_open_files = 500;

  // -------- read path (docs/READ_PATH.md) --------
  // Shared cache of decompressed blocks + filter partitions. nullptr =
  // the DB owns a lock-sharded LRU cache of block_cache_size bytes;
  // ShardedDB injects one fleet-wide cache here for all member shards.
  read::Cache* block_cache = nullptr;

  // Capacity of the DB-owned block cache when block_cache is nullptr.
  size_t block_cache_size = 8 * 1024 * 1024;

  // Lock shards of the DB-owned block cache (rounded up to a power of
  // two; 0 = pick from hardware concurrency; 1 = single-mutex baseline).
  size_t block_cache_shards = 0;

  // Lock shards of the table cache's LRU of open Table readers.
  size_t table_cache_shards = 0;

  // When > 0 and filter_policy is null, the DB owns a bloom filter
  // policy with this many bits per key — the usual way to turn filters
  // on without managing a FilterPolicy's lifetime.
  int bloom_bits_per_key = 0;

  // Target payload bytes of one bloom-filter partition; point reads load
  // only the partition covering the probed block offset.
  size_t filter_partition_bytes = 4096;

  // S5 codec. Paper default: snappy; here the built-in LZ codec.
  CompressionType compression = CompressionType::kLzCompression;

  // Optional bloom filters on memtable-flush outputs.
  const FilterPolicy* filter_policy = nullptr;

  // -------- compaction procedure (the paper's contribution) --------
  CompactionMode compaction_mode = CompactionMode::kPCP;

  // -------- compaction policy (docs/COMPACTION.md) --------
  // Which CompactionPicker decides the shape of every job (see the enum
  // above). Must be the same across DB openings of one directory: tiered
  // styles install overlapping runs in levels > 0 that a leveled reopen
  // would reject.
  CompactionStyle compaction_style = CompactionStyle::kLeveled;

  // Tiered / lazy-leveling: a level is merged into the next once it
  // accumulates this many sorted runs. Smaller = closer to leveled
  // (fewer runs to read through), larger = cheaper writes. Sarkar et
  // al.'s T; clamped to [2, 32].
  int tiered_run_count = 4;

  // Upper bound on key-range sub-compactions per job: a large job is
  // split at input-table boundary keys into up to this many disjoint
  // sub-ranges, each run by its own executor instance in parallel, and
  // installed atomically as one version edit. The effective fan-out is
  // additionally clamped by the admission grant's parallelism budget
  // (max of granted read/compute k) and by the job's size (each
  // sub-range must carry at least two sub-tasks of input). 1 (default) =
  // off; clamped to [1, 16].
  int max_subcompactions = 1;

  // Sub-task granularity in input bytes; each sub-task covers one or more
  // data blocks of the upper input. Paper sweeps 64 KB..4 MB; its best PCP
  // configuration on SSD is 512 KB.
  size_t subtask_bytes = 512 * 1024;

  // C-PPCP: number of compute worker threads (1 = plain PCP).
  int compute_parallelism = 1;

  // S-PPCP: number of reader threads issuing S1 concurrently (pair with a
  // RAID0 device profile so the transfers actually parallelize).
  int io_parallelism = 1;

  // Depth of the bounded queues between pipeline stages.
  size_t pipeline_queue_depth = 4;

  // Slow-motion factor for compaction experiments on hosts with fewer
  // cores than the paper's testbed (see CompactionJobOptions::
  // time_dilation). 1.0 = real time.
  double compaction_time_dilation = 1.0;

  // -------- adaptive compaction scheduling (docs/TUNING.md) --------
  // When true, the procedure and parallelism degree of every major
  // compaction are chosen per job by the CompactionScheduler
  // (src/compaction/scheduler.h): it evaluates the paper's Eqs. 1-7 on
  // the bottleneck advisor's decayed step profile at each admission, so
  // the executor tracks whether the pipeline is currently I/O- or
  // CPU-bound instead of freezing compaction_mode at DB::Open. When
  // false (default), compaction_mode / io_parallelism /
  // compute_parallelism above apply verbatim to every job.
  bool adaptive_compaction = false;

  // Bounds on the per-job parallelism the scheduler may choose. The
  // model's saturation k (Eqs. 4/6) is clamped into these ranges: cap
  // max_stripe_width at the real stripe count of the device (reader
  // threads beyond it just queue on the same channels) and
  // max_compute_workers at the cores you can spare for compaction.
  int min_compute_workers = 1;
  int max_compute_workers = 4;
  int min_stripe_width = 1;
  int max_stripe_width = 4;

  // Hysteresis window: the scheduler switches executor only after this
  // many consecutive admissions prescribe the same (procedure, k) that
  // differs from the current choice, so one noisy profile cannot flap
  // the pipeline shape back and forth.
  int scheduler_hysteresis_jobs = 3;

  // Completed compactions the advisor must have digested before adaptive
  // decisions begin; until then the static compaction_mode applies (the
  // decayed profile of the first job or two is mostly noise).
  int scheduler_warmup_jobs = 2;

  // A stage-parallel procedure (S-PPCP/C-PPCP) is only chosen when its
  // ideal gain over plain PCP (Eqs. 5/7, at the clamped k) reaches this
  // factor; below it the scheduler stays on PCP.
  double scheduler_min_gain = 1.1;

  // -------- fleet scheduling (docs/SHARDING.md) --------
  // When non-null, every compaction admission goes through this governor
  // instead of the per-DB scheduler: the background thread blocks in
  // CompactionGovernor::Admit() until the fleet hands it an executor + k
  // within the shared lane/worker budget, and releases the grant when
  // the job finishes. ShardedDB wires its CompactionArbiter here for all
  // member shards. Must be thread-safe and outlive the DB; nullptr
  // (default) keeps per-DB admission.
  CompactionGovernor* compaction_governor = nullptr;

  // Identity stamped on governor admission requests and EVENT lines when
  // this engine is one shard of a ShardedDB; -1 = not sharded.
  int shard_id = -1;

  // Extension beyond the paper: pipeline memtable flushes too (block
  // building/compression overlapped with file writes — the paper notes
  // its system pipelines only major compactions "by now"). Off by
  // default so the stock-LevelDB flush path stays the baseline.
  bool pipelined_flush = false;

  // Verify block checksums (S2) on every read path.
  bool verify_checksums = true;

  // -------- key-value separation (docs/VALUE_LOG.md) --------
  // Values at least this many bytes are stored in the append-only value
  // log; the LSM keeps a fixed-size location pointer instead, so
  // compaction moves 20 bytes per large value instead of the value
  // itself. Get/iterators resolve pointers transparently. 0 (default) =
  // separation off; every value inlines into the LSM as before.
  size_t value_separation_threshold = 0;

  // Target size of one value-log segment file. The active segment rolls
  // (sync + seal + fresh file) when an append pushes it past this.
  size_t vlog_segment_size = 32 * 1024 * 1024;

  // A sealed segment becomes a GC candidate once the fraction of its
  // bytes known dead (from compaction discard stats) reaches this ratio.
  // GC rewrites the remaining live values and retires the segment.
  double vlog_gc_dead_ratio = 0.5;

  // -------- fault handling (docs/FAULT_INJECTION.md) --------
  // Transient background I/O errors (failed flush or compaction) are
  // retried with bounded exponential backoff before the DB gives up and
  // enters the sticky background-error state (writes fail, reads keep
  // working, DB::Resume() recovers without a reopen). 0 = no retries:
  // the first background failure is sticky. Corruption is never retried.
  int max_background_retries = 5;

  // Backoff before retry r is background_retry_backoff_micros * 2^(r-1),
  // capped at background_retry_backoff_max_micros.
  uint64_t background_retry_backoff_micros = 1000;
  uint64_t background_retry_backoff_max_micros = 256 * 1000;

  // -------- observability (docs/OBSERVABILITY.md) --------
  // When non-empty, the DB records per-sub-task pipeline stage spans for
  // every compaction and flush, and writes them as Chrome trace_event
  // JSON to this *host filesystem* path when the DB is closed (the trace
  // always lands on the real FS so chrome://tracing or Perfetto can load
  // it, even when the DB itself runs on a SimEnv). Pipeline metrics via
  // GetProperty("pipelsm.metrics") are collected unconditionally. The
  // trace is rewritten on every stats-dump tick (and on the first
  // background error) so a crashed run still leaves a usable file.
  std::string trace_path;

  // Event callbacks (src/obs/event_listener.h): flush and compaction
  // Begin/Completed plus write-stall transitions, fired synchronously
  // from the DB's background and writer threads. Listeners must be
  // thread-safe, outlive the DB, and never call back into it.
  std::vector<obs::EventListener*> listeners;

  // Info log sink. nullptr = the DB creates a LOG file in the DB
  // directory through its Env (rotating any previous one to LOG.old).
  // Structured one-line events and periodic stats reports land here.
  obs::Logger* info_log = nullptr;

  // When > 0, a background thread appends the full stats report (the
  // GetProperty("pipelsm.stats") payload: counters, foreground latency
  // histograms, the advisor verdict) to the info log every
  // this-many seconds, re-exports trace_path, and appends one metrics
  // snapshot to the time-series ring below. 0 = off.
  unsigned int stats_dump_period_sec = 0;

  // Depth of the in-memory metrics time-series ring served by
  // GetProperty("pipelsm.timeseries"): the stats thread appends one
  // sample per dump tick, so the window covers roughly
  // timeseries_window * stats_dump_period_sec seconds of history.
  // Consumers (pipelsm_top, the admin endpoint's /timeseries) derive
  // rates from adjacent samples without keeping state of their own.
  size_t timeseries_window = 120;
};

// Options that control read operations.
struct ReadOptions {
  // If true, all data read from underlying storage will be verified
  // against corresponding checksums.
  bool verify_checksums = false;

  // Should the data read for this iteration be cached in memory?
  bool fill_cache = true;

  // If non-null, read as of the supplied snapshot (which must belong to
  // the DB that is being read and must not have been released).
  const Snapshot* snapshot = nullptr;
};

// Options that control write operations.
struct WriteOptions {
  // If true, the write will be flushed from the operating system buffer
  // cache before the write is considered complete.
  bool sync = false;
};

}  // namespace pipelsm
