// File naming scheme within a DB directory:
//   <dbname>/<number>.log      — WAL
//   <dbname>/<number>.pst      — SSTable
//   <dbname>/<number>.vlog     — value-log segment (docs/VALUE_LOG.md)
//   <dbname>/MANIFEST-<number> — version log
//   <dbname>/CURRENT           — points at the live MANIFEST
//   <dbname>/<number>.dbtmp    — temporary files
//   <dbname>/LOG, LOG.old      — info log (current and previous run)
#pragma once

#include <cstdint>
#include <string>

#include "src/env/env.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace pipelsm {

enum FileType {
  kLogFile,
  kDBLockFile,
  kTableFile,
  kDescriptorFile,
  kCurrentFile,
  kTempFile,
  kVlogFile,
};

std::string LogFileName(const std::string& dbname, uint64_t number);
std::string TableFileName(const std::string& dbname, uint64_t number);
std::string VlogFileName(const std::string& dbname, uint64_t number);
std::string DescriptorFileName(const std::string& dbname, uint64_t number);
std::string CurrentFileName(const std::string& dbname);
std::string TempFileName(const std::string& dbname, uint64_t number);
std::string InfoLogFileName(const std::string& dbname);
std::string OldInfoLogFileName(const std::string& dbname);

// If filename is a pipelsm file, store its type in *type, its number in
// *number (0 for CURRENT), and return true.
bool ParseFileName(const std::string& filename, uint64_t* number,
                   FileType* type);

// Make CURRENT point at the descriptor file with the given number.
Status SetCurrentFile(Env* env, const std::string& dbname,
                      uint64_t descriptor_number);

}  // namespace pipelsm
