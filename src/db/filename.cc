#include "src/db/filename.h"

#include <cassert>
#include <cstdio>

#include "src/util/logging.h"

namespace pipelsm {

static std::string MakeFileName(const std::string& dbname, uint64_t number,
                                const char* suffix) {
  char buf[100];
  std::snprintf(buf, sizeof(buf), "/%06llu.%s",
                static_cast<unsigned long long>(number), suffix);
  return dbname + buf;
}

std::string LogFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  return MakeFileName(dbname, number, "log");
}

std::string TableFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  return MakeFileName(dbname, number, "pst");
}

std::string VlogFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  return MakeFileName(dbname, number, "vlog");
}

std::string DescriptorFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  char buf[100];
  std::snprintf(buf, sizeof(buf), "/MANIFEST-%06llu",
                static_cast<unsigned long long>(number));
  return dbname + buf;
}

std::string CurrentFileName(const std::string& dbname) {
  return dbname + "/CURRENT";
}

std::string TempFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  return MakeFileName(dbname, number, "dbtmp");
}

std::string InfoLogFileName(const std::string& dbname) {
  return dbname + "/LOG";
}

std::string OldInfoLogFileName(const std::string& dbname) {
  return dbname + "/LOG.old";
}

bool ParseFileName(const std::string& filename, uint64_t* number,
                   FileType* type) {
  Slice rest(filename);
  if (rest == Slice("CURRENT")) {
    *number = 0;
    *type = kCurrentFile;
  } else if (rest.starts_with("MANIFEST-")) {
    rest.remove_prefix(std::strlen("MANIFEST-"));
    uint64_t num;
    if (!ConsumeDecimalNumber(&rest, &num)) {
      return false;
    }
    if (!rest.empty()) {
      return false;
    }
    *type = kDescriptorFile;
    *number = num;
  } else {
    // Avoid strtoull() to keep filename format independent of locale.
    uint64_t num;
    if (!ConsumeDecimalNumber(&rest, &num)) {
      return false;
    }
    Slice suffix = rest;
    if (suffix == Slice(".log")) {
      *type = kLogFile;
    } else if (suffix == Slice(".pst")) {
      *type = kTableFile;
    } else if (suffix == Slice(".dbtmp")) {
      *type = kTempFile;
    } else if (suffix == Slice(".vlog")) {
      *type = kVlogFile;
    } else {
      return false;
    }
    *number = num;
  }
  return true;
}

Status SetCurrentFile(Env* env, const std::string& dbname,
                      uint64_t descriptor_number) {
  // Crash-atomic install: write the pointer into a synced temp file,
  // rename it over CURRENT, then fsync the directory so the rename
  // itself survives power loss. A crash at any point leaves either the
  // old or the new CURRENT — never a torn one.
  std::string manifest = DescriptorFileName(dbname, descriptor_number);
  Slice contents = manifest;
  assert(contents.starts_with(dbname + "/"));
  contents.remove_prefix(dbname.size() + 1);
  std::string tmp = TempFileName(dbname, descriptor_number);
  Status s = WriteStringToFile(env, contents.ToString() + "\n", tmp, true);
  if (s.ok()) {
    s = env->RenameFile(tmp, CurrentFileName(dbname));
  }
  if (s.ok()) {
    s = env->SyncDir(dbname);
  }
  if (!s.ok()) {
    env->RemoveFile(tmp);
  }
  return s;
}

}  // namespace pipelsm
