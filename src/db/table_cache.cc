#include "src/db/table_cache.h"

#include "src/db/filename.h"
#include "src/env/env.h"
#include "src/util/coding.h"

namespace pipelsm {

namespace {
Slice FileKey(uint64_t file_number, char* buf) {
  EncodeFixed64(buf, file_number);
  return Slice(buf, 8);
}
}  // namespace

TableCache::TableCache(std::string dbname, const TableOptions& table_options,
                       Env* env, int max_open_tables, size_t shards)
    : dbname_(std::move(dbname)),
      table_options_(table_options),
      env_(env),
      store_(read::NewShardedLRUCache(
          max_open_tables > 0 ? static_cast<size_t>(max_open_tables) : 1,
          shards)) {}

Status TableCache::FindTable(uint64_t file_number, uint64_t file_size,
                             std::shared_ptr<Table>* table) {
  char key_buf[8];
  Slice key = FileKey(file_number, key_buf);
  std::shared_ptr<Table> cached = store_->LookupAs<Table>(key);
  if (cached != nullptr) {
    *table = std::move(cached);
    return Status::OK();
  }

  // Open outside any cache lock (it performs I/O). Racing openers may
  // both insert; the loser's reader stays valid through its shared_ptr
  // and simply ages out.
  std::string fname = TableFileName(dbname_, file_number);
  std::unique_ptr<RandomAccessFile> file;
  Status s = env_->NewRandomAccessFile(fname, &file);
  if (!s.ok()) return s;

  std::unique_ptr<Table> t;
  s = Table::Open(table_options_, std::move(file), file_size, &t);
  if (!s.ok()) return s;

  std::shared_ptr<Table> shared(std::move(t));
  store_->Insert(key, shared, 1);
  *table = std::move(shared);
  return Status::OK();
}

Status TableCache::GetTable(uint64_t file_number, uint64_t file_size,
                            std::shared_ptr<Table>* table) {
  return FindTable(file_number, file_size, table);
}

Iterator* TableCache::NewIterator(const TableReadOptions& read_options,
                                  uint64_t file_number, uint64_t file_size,
                                  Table** tableptr) {
  if (tableptr != nullptr) {
    *tableptr = nullptr;
  }

  std::shared_ptr<Table> table;
  Status s = FindTable(file_number, file_size, &table);
  if (!s.ok()) {
    return NewErrorIterator(s);
  }

  Iterator* result = table->NewIterator(read_options);
  // Keep the table alive for the iterator's lifetime.
  result->RegisterCleanup([table]() mutable { table.reset(); });
  if (tableptr != nullptr) {
    *tableptr = table.get();
  }
  return result;
}

Status TableCache::Get(
    const TableReadOptions& read_options, uint64_t file_number,
    uint64_t file_size, const Slice& k,
    const std::function<void(const Slice&, const Slice&)>& handle) {
  std::shared_ptr<Table> table;
  Status s = FindTable(file_number, file_size, &table);
  if (!s.ok()) return s;
  return table->InternalGet(read_options, k, handle);
}

void TableCache::Evict(uint64_t file_number) {
  char key_buf[8];
  Slice key = FileKey(file_number, key_buf);
  std::shared_ptr<Table> table = store_->LookupAs<Table>(key);
  if (table != nullptr && table->cache_id() != 0 &&
      table_options_.block_cache != nullptr) {
    // The file is gone: its blocks and filter partitions can never be
    // read again, so purge them instead of letting them squat on cache
    // capacity until natural eviction.
    char prefix_buf[8];
    EncodeFixed64(prefix_buf, table->cache_id());
    table_options_.block_cache->ErasePrefix(Slice(prefix_buf, 8));
  }
  store_->Erase(key);
}

}  // namespace pipelsm
