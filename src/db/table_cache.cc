#include "src/db/table_cache.h"

#include "src/db/filename.h"
#include "src/env/env.h"

namespace pipelsm {

TableCache::TableCache(std::string dbname, const TableOptions& table_options,
                       Env* env, int max_open_tables)
    : dbname_(std::move(dbname)),
      table_options_(table_options),
      env_(env),
      capacity_(max_open_tables > 0 ? max_open_tables : 1) {}

Status TableCache::FindTable(uint64_t file_number, uint64_t file_size,
                             std::shared_ptr<Table>* table) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(file_number);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      *table = it->second->table;
      return Status::OK();
    }
  }

  // Open outside the lock (it performs I/O).
  std::string fname = TableFileName(dbname_, file_number);
  std::unique_ptr<RandomAccessFile> file;
  Status s = env_->NewRandomAccessFile(fname, &file);
  if (!s.ok()) return s;

  std::unique_ptr<Table> t;
  s = Table::Open(table_options_, std::move(file), file_size, &t);
  if (!s.ok()) return s;

  std::shared_ptr<Table> shared(std::move(t));
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(file_number);
    if (it != index_.end()) {
      // Raced with another opener; use theirs.
      *table = it->second->table;
      return Status::OK();
    }
    lru_.push_front(Entry{file_number, shared});
    index_[file_number] = lru_.begin();
    while (lru_.size() > capacity_) {
      auto victim = std::prev(lru_.end());
      index_.erase(victim->number);
      lru_.erase(victim);
    }
  }
  *table = std::move(shared);
  return Status::OK();
}

Status TableCache::GetTable(uint64_t file_number, uint64_t file_size,
                            std::shared_ptr<Table>* table) {
  return FindTable(file_number, file_size, table);
}

Iterator* TableCache::NewIterator(const TableReadOptions& read_options,
                                  uint64_t file_number, uint64_t file_size,
                                  Table** tableptr) {
  if (tableptr != nullptr) {
    *tableptr = nullptr;
  }

  std::shared_ptr<Table> table;
  Status s = FindTable(file_number, file_size, &table);
  if (!s.ok()) {
    return NewErrorIterator(s);
  }

  Iterator* result = table->NewIterator(read_options);
  // Keep the table alive for the iterator's lifetime.
  result->RegisterCleanup([table]() mutable { table.reset(); });
  if (tableptr != nullptr) {
    *tableptr = table.get();
  }
  return result;
}

Status TableCache::Get(
    const TableReadOptions& read_options, uint64_t file_number,
    uint64_t file_size, const Slice& k,
    const std::function<void(const Slice&, const Slice&)>& handle) {
  std::shared_ptr<Table> table;
  Status s = FindTable(file_number, file_size, &table);
  if (!s.ok()) return s;
  return table->InternalGet(read_options, k, handle);
}

void TableCache::Evict(uint64_t file_number) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(file_number);
  if (it == index_.end()) return;
  lru_.erase(it->second);
  index_.erase(it);
}

}  // namespace pipelsm
