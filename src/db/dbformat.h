// Internal key format shared by the memtable, tables and compaction:
//
//   internal_key := user_key | fixed64( sequence << 8 | value_type )
//
// Ordering: ascending user key, then *descending* sequence, then
// descending type — so the newest version of a user key is seen first.
#pragma once

#include <cstdint>
#include <string>

#include "src/table/comparator.h"
#include "src/table/filter_policy.h"
#include "src/util/coding.h"
#include "src/util/logging.h"
#include "src/util/slice.h"

namespace pipelsm {

// Grouping of constants. The paper's LevelDB substrate uses 7 levels with
// exponentially growing size thresholds.
namespace config {
static const int kNumLevels = 7;

// Level-0 compaction is started when we hit this many files.
static const int kL0_CompactionTrigger = 4;

// Soft limit on number of level-0 files. We slow down writes at this point.
static const int kL0_SlowdownWritesTrigger = 8;

// Maximum number of level-0 files. We stop writes at this point.
static const int kL0_StopWritesTrigger = 12;
}  // namespace config

enum ValueType : uint8_t {
  kTypeDeletion = 0x0,
  kTypeValue = 0x1,
  // Key-value separation (docs/VALUE_LOG.md): the entry's "value" bytes
  // are an encoded vlog::ValueLocation pointing into the value log, not
  // the user value itself. Compaction moves these 20-byte pointers
  // around opaquely; Get/iterators resolve them on read.
  kTypeValuePointer = 0x2,
};

// kValueTypeForSeek defines the ValueType that should be passed when
// constructing a ParsedInternalKey object for seeking to a particular
// sequence number (since we sort sequence numbers in decreasing order
// and the value type is embedded as the low 8 bits in the sequence
// number in internal keys, we need to use the highest-numbered
// ValueType, not the lowest).
static const ValueType kValueTypeForSeek = kTypeValuePointer;

typedef uint64_t SequenceNumber;

// We leave eight bits empty at the bottom so a type and sequence#
// can be packed together into 64-bits.
static const SequenceNumber kMaxSequenceNumber = ((0x1ull << 56) - 1);

struct ParsedInternalKey {
  Slice user_key;
  SequenceNumber sequence;
  ValueType type;

  ParsedInternalKey() {}
  ParsedInternalKey(const Slice& u, const SequenceNumber& seq, ValueType t)
      : user_key(u), sequence(seq), type(t) {}
  std::string DebugString() const;
};

// Return the length of the encoding of "key".
inline size_t InternalKeyEncodingLength(const ParsedInternalKey& key) {
  return key.user_key.size() + 8;
}

inline uint64_t PackSequenceAndType(uint64_t seq, ValueType t) {
  return (seq << 8) | t;
}

// Append the serialization of "key" to *result.
void AppendInternalKey(std::string* result, const ParsedInternalKey& key);

// Attempt to parse an internal key from "internal_key". On success,
// stores the parsed data in "*result" and returns true.
bool ParseInternalKey(const Slice& internal_key, ParsedInternalKey* result);

// Returns the user key portion of an internal key.
inline Slice ExtractUserKey(const Slice& internal_key) {
  assert(internal_key.size() >= 8);
  return Slice(internal_key.data(), internal_key.size() - 8);
}

inline uint64_t ExtractSequenceAndType(const Slice& internal_key) {
  assert(internal_key.size() >= 8);
  return DecodeFixed64(internal_key.data() + internal_key.size() - 8);
}

// A comparator for internal keys that uses a specified comparator for
// the user key portion and breaks ties by decreasing sequence number.
class InternalKeyComparator final : public Comparator {
 public:
  explicit InternalKeyComparator(const Comparator* c) : user_comparator_(c) {}
  const char* Name() const override;
  int Compare(const Slice& a, const Slice& b) const override;
  void FindShortestSeparator(std::string* start,
                             const Slice& limit) const override;
  void FindShortSuccessor(std::string* key) const override;

  const Comparator* user_comparator() const { return user_comparator_; }

  int Compare(const class InternalKey& a, const class InternalKey& b) const;

 private:
  const Comparator* user_comparator_;
};

// Filter policy wrapper that converts from internal keys to user keys.
class InternalFilterPolicy final : public FilterPolicy {
 public:
  explicit InternalFilterPolicy(const FilterPolicy* p) : user_policy_(p) {}
  const char* Name() const override;
  void CreateFilter(const Slice* keys, size_t n,
                    std::string* dst) const override;
  bool KeyMayMatch(const Slice& key, const Slice& filter) const override;

 private:
  const FilterPolicy* const user_policy_;
};

// A helper class that wraps an encoded InternalKey in a std::string.
class InternalKey {
 public:
  InternalKey() {}  // Leave rep_ as empty to indicate it is invalid
  InternalKey(const Slice& user_key, SequenceNumber s, ValueType t) {
    AppendInternalKey(&rep_, ParsedInternalKey(user_key, s, t));
  }

  bool DecodeFrom(const Slice& s) {
    rep_.assign(s.data(), s.size());
    return !rep_.empty();
  }

  Slice Encode() const {
    assert(!rep_.empty());
    return rep_;
  }

  Slice user_key() const { return ExtractUserKey(rep_); }

  void SetFrom(const ParsedInternalKey& p) {
    rep_.clear();
    AppendInternalKey(&rep_, p);
  }

  void Clear() { rep_.clear(); }

  std::string DebugString() const;

 private:
  std::string rep_;
};

inline int InternalKeyComparator::Compare(const InternalKey& a,
                                          const InternalKey& b) const {
  return Compare(a.Encode(), b.Encode());
}

// A helper class useful for DB::Get(): an internal key buffer with the
// memtable lookup format prefix.
class LookupKey {
 public:
  // Initialize *this for looking up user_key at snapshot `sequence`.
  LookupKey(const Slice& user_key, SequenceNumber sequence);
  ~LookupKey();

  LookupKey(const LookupKey&) = delete;
  LookupKey& operator=(const LookupKey&) = delete;

  // Return a key suitable for lookup in a MemTable.
  Slice memtable_key() const { return Slice(start_, end_ - start_); }

  // Return an internal key (suitable for passing to an internal iterator).
  Slice internal_key() const { return Slice(kstart_, end_ - kstart_); }

  // Return the user key.
  Slice user_key() const { return Slice(kstart_, end_ - kstart_ - 8); }

 private:
  // We construct a char array of the form:
  //    klength  varint32               <-- start_
  //    userkey  char[klength]          <-- kstart_
  //    tag      uint64
  //                                    <-- end_
  const char* start_;
  const char* kstart_;
  const char* end_;
  char space_[200];  // Avoid allocation for short keys
};

}  // namespace pipelsm
