#include "src/db/db_impl.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/compaction/executor.h"
#include "src/compaction/picker.h"
#include "src/compaction/scheduler.h"
#include "src/db/builder.h"
#include "src/db/db_iter.h"
#include "src/db/filename.h"
#include "src/table/filter_policy.h"
#include "src/table/merger.h"
#include "src/util/logging.h"
#include "src/wal/log_reader.h"

namespace pipelsm {

Snapshot::~Snapshot() = default;
DB::~DB() = default;

namespace {

Options SanitizeOptions(const Options& src) {
  Options result = src;
  if (result.env == nullptr) result.env = Env::Posix();
  if (result.comparator == nullptr) result.comparator = BytewiseComparator();
  auto clip = [](size_t v, size_t lo, size_t hi) {
    return std::min(hi, std::max(lo, v));
  };
  result.write_buffer_size =
      clip(result.write_buffer_size, 64 << 10, 1 << 30);
  result.max_file_size = clip(result.max_file_size, 64 << 10, 1 << 30);
  result.block_size = clip(result.block_size, 1 << 10, 4 << 20);
  if (result.max_open_files < 16) result.max_open_files = 16;
  if (result.compute_parallelism < 1) result.compute_parallelism = 1;
  if (result.io_parallelism < 1) result.io_parallelism = 1;
  if (result.min_compute_workers < 1) result.min_compute_workers = 1;
  if (result.max_compute_workers < result.min_compute_workers) {
    result.max_compute_workers = result.min_compute_workers;
  }
  if (result.min_stripe_width < 1) result.min_stripe_width = 1;
  if (result.max_stripe_width < result.min_stripe_width) {
    result.max_stripe_width = result.min_stripe_width;
  }
  if (result.scheduler_hysteresis_jobs < 1) {
    result.scheduler_hysteresis_jobs = 1;
  }
  // Compaction-policy knobs (docs/COMPACTION.md): T < 2 degenerates to
  // leveling with extra read amplification, and the sub-compaction
  // fan-out is bounded so a misconfigured value cannot spawn an
  // unbounded thread herd per job.
  if (result.tiered_run_count < 2) result.tiered_run_count = 2;
  if (result.tiered_run_count > 32) result.tiered_run_count = 32;
  if (result.max_subcompactions < 1) result.max_subcompactions = 1;
  if (result.max_subcompactions > 16) result.max_subcompactions = 16;
  if (result.scheduler_warmup_jobs < 0) result.scheduler_warmup_jobs = 0;
  if (result.scheduler_min_gain < 1.0) result.scheduler_min_gain = 1.0;
  if (result.pipeline_queue_depth < 1) result.pipeline_queue_depth = 1;
  if (result.max_background_retries < 0) result.max_background_retries = 0;
  // Value-log knobs (docs/VALUE_LOG.md): a frame must fit its segment,
  // and a dead ratio of 0 would GC segments that lost a single byte.
  if (result.value_separation_threshold > 0) {
    result.vlog_segment_size =
        clip(result.vlog_segment_size, 64 << 10, 1 << 30);
    if (result.value_separation_threshold > result.vlog_segment_size / 2) {
      result.value_separation_threshold = result.vlog_segment_size / 2;
    }
  }
  if (result.vlog_gc_dead_ratio < 0.01) result.vlog_gc_dead_ratio = 0.01;
  if (result.vlog_gc_dead_ratio > 1.0) result.vlog_gc_dead_ratio = 1.0;
  if (result.background_retry_backoff_micros < 1) {
    result.background_retry_backoff_micros = 1;
  }
  if (result.background_retry_backoff_max_micros <
      result.background_retry_backoff_micros) {
    result.background_retry_backoff_max_micros =
        result.background_retry_backoff_micros;
  }
  return result;
}

// Choose up to want-1 strictly increasing user keys splitting a job's
// inputs into byte-balanced sub-ranges. Cuts happen only at input-table
// largest keys, so most tables fall wholly inside one sub-range and no
// boundary splits a key's version chain (all versions of a seam key land
// in the sub-range at or below it). May return fewer splits than asked —
// including none — when the inputs offer too few distinct boundaries.
std::vector<std::string> PickSubcompactionSplits(const Compaction* c,
                                                 const Comparator* ucmp,
                                                 int want) {
  struct Cand {
    std::string key;
    uint64_t bytes;
  };
  std::vector<Cand> cands;
  uint64_t total = 0;
  for (int which = 0; which < 2; which++) {
    for (const FileMetaData* f : c->inputs(which)) {
      cands.push_back({f->largest.user_key().ToString(), f->file_size});
      total += f->file_size;
    }
  }
  std::sort(cands.begin(), cands.end(),
            [&](const Cand& a, const Cand& b) {
              return ucmp->Compare(a.key, b.key) < 0;
            });
  // Merge duplicate boundary keys, accumulating their bytes.
  size_t n = 0;
  for (size_t i = 0; i < cands.size(); i++) {
    if (n > 0 && ucmp->Compare(cands[i].key, cands[n - 1].key) == 0) {
      cands[n - 1].bytes += cands[i].bytes;
    } else {
      cands[n++] = cands[i];
    }
  }
  cands.resize(n);
  std::vector<std::string> splits;
  if (cands.size() < 2 || total == 0 || want < 2) return splits;
  // Walk boundaries accumulating bytes; cut whenever the running total
  // crosses the next even share. The global max key is never a split
  // (the trailing sub-range would be empty).
  uint64_t cum = 0;
  uint64_t next_share = 1;
  for (size_t i = 0;
       i + 1 < cands.size() && splits.size() + 1 < static_cast<size_t>(want);
       i++) {
    cum += cands[i].bytes;
    if (cum >= total * next_share / static_cast<uint64_t>(want)) {
      splits.push_back(cands[i].key);
      next_share++;
    }
  }
  return splits;
}

}  // namespace

class DBImpl::CompactionSinkImpl final : public CompactionSink {
 public:
  CompactionSinkImpl(DBImpl* db) : db_(db) {}

  Status NewOutputFile(uint64_t* file_number,
                       std::unique_ptr<WritableFile>* file) override {
    // Opportunistically flush a pending immutable memtable so the write
    // path does not stall for the whole duration of a long compaction
    // (LevelDB does the same check inside its compaction loop).
    db_->MaybeFlushImmFromSink();

    uint64_t number;
    {
      std::lock_guard<std::mutex> lock(db_->mutex_);
      number = db_->versions_->NewFileNumber();
      db_->pending_outputs_.insert(number);
    }
    Status s = db_->env_->NewWritableFile(TableFileName(db_->dbname_, number),
                                          file);
    if (s.ok()) {
      *file_number = number;
      std::lock_guard<std::mutex> lock(mu_);
      allocated_.push_back(number);
    } else {
      std::lock_guard<std::mutex> lock(db_->mutex_);
      db_->pending_outputs_.erase(number);
    }
    return s;
  }

  void OutputFinished(const OutputMeta& meta) override {
    outputs_.push_back(meta);
  }

  const std::vector<OutputMeta>& outputs() const { return outputs_; }

  // Every output number this job pulled into pending_outputs_, including
  // files abandoned half-written on an error exit. The driver must erase
  // all of them — not just the finished outputs — or failed jobs leak
  // table files that RemoveObsoleteFiles can never reclaim.
  const std::vector<uint64_t>& allocated() const { return allocated_; }

 private:
  DBImpl* const db_;
  std::mutex mu_;  // NewOutputFile can race with itself across stages
  std::vector<OutputMeta> outputs_;
  std::vector<uint64_t> allocated_;
};

// Internal listener, always first on the dispatch list: renders every
// event as one grep-able `EVENT` line in the info log and feeds each
// successful compaction's StepProfile to the bottleneck advisor.
class DBImpl::EventLogger final : public obs::EventListener {
 public:
  explicit EventLogger(DBImpl* db) : db_(db) {}

  void OnFlushBegin(const obs::FlushJobInfo& info) override {
    obs::Log(db_->info_log_,
             "EVENT flush_begin job=%llu file=%llu pipelined=%d",
             static_cast<unsigned long long>(info.job_id),
             static_cast<unsigned long long>(info.file_number),
             info.pipelined ? 1 : 0);
  }

  void OnFlushCompleted(const obs::FlushJobInfo& info) override {
    obs::Log(db_->info_log_,
             "EVENT flush_end job=%llu file=%llu bytes=%llu entries=%llu "
             "micros=%llu status=%s",
             static_cast<unsigned long long>(info.job_id),
             static_cast<unsigned long long>(info.file_number),
             static_cast<unsigned long long>(info.output_bytes),
             static_cast<unsigned long long>(info.entries),
             static_cast<unsigned long long>(info.micros),
             info.status.ok() ? "ok" : info.status.ToString().c_str());
  }

  void OnCompactionBegin(const obs::CompactionJobInfo& info) override {
    obs::Log(db_->info_log_,
             "EVENT compaction_begin job=%llu level=%d output_level=%d "
             "style=%s executor=%s read_k=%d compute_k=%d adaptive=%d "
             "inputs=%d input_bytes=%llu subtasks=%llu subcompactions=%d "
             "predicted_write_amp=%.2f",
             static_cast<unsigned long long>(info.job_id), info.level,
             info.output_level, info.style, info.executor,
             info.read_parallelism, info.compute_parallelism,
             info.adaptive ? 1 : 0, info.input_files,
             static_cast<unsigned long long>(info.input_bytes),
             static_cast<unsigned long long>(info.subtasks),
             info.subcompactions, info.predicted_write_amp);
  }

  void OnCompactionCompleted(const obs::CompactionJobInfo& info) override {
    const StepProfile& p = info.profile;
    obs::Log(db_->info_log_,
             "EVENT compaction_end job=%llu level=%d output_level=%d "
             "style=%s executor=%s subcompactions=%d "
             "output_bytes=%llu read_ms=%.1f compute_ms=%.1f write_ms=%.1f "
             "wall_ms=%.1f status=%s",
             static_cast<unsigned long long>(info.job_id), info.level,
             info.output_level, info.style, info.executor,
             info.subcompactions,
             static_cast<unsigned long long>(info.output_bytes),
             p.nanos[kStepRead] / 1e6, p.ComputeNanos() / 1e6,
             p.nanos[kStepWrite] / 1e6, info.wall_micros / 1e3,
             info.status.ok() ? "ok" : info.status.ToString().c_str());
    if (info.status.ok()) {
      db_->advisor_.AddJob(info.profile);
    }
  }

  void OnWriteStallChange(const obs::WriteStallInfo& info) override {
    // Called with mutex_ held — one formatted append, nothing blocking.
    obs::Log(db_->info_log_, "EVENT write_stall %s->%s",
             obs::WriteStallConditionName(info.previous),
             obs::WriteStallConditionName(info.condition));
  }

  void OnBackgroundError(const obs::BackgroundErrorInfo& info) override {
    // Called with mutex_ held — one formatted append, nothing blocking.
    obs::Log(db_->info_log_,
             "EVENT background_error source=%s attempt=%d/%d sticky=%d "
             "status=%s",
             info.source, info.attempt, info.max_attempts,
             info.sticky ? 1 : 0, info.status.ToString().c_str());
  }

  void OnErrorRecovered(const obs::ErrorRecoveryInfo& info) override {
    obs::Log(db_->info_log_, "EVENT resume cleared=%s",
             info.old_error.ToString().c_str());
  }

 private:
  DBImpl* const db_;
};

DBImpl::DBImpl(const Options& raw_options, const std::string& dbname)
    : env_(SanitizeOptions(raw_options).env),
      internal_comparator_(raw_options.comparator != nullptr
                               ? raw_options.comparator
                               : BytewiseComparator()),
      owned_filter_policy_(raw_options.filter_policy == nullptr &&
                                   raw_options.bloom_bits_per_key > 0
                               ? NewBloomFilterPolicy(
                                     raw_options.bloom_bits_per_key)
                               : nullptr),
      internal_filter_policy_(owned_filter_policy_ != nullptr
                                  ? owned_filter_policy_.get()
                                  : raw_options.filter_policy),
      options_(SanitizeOptions(raw_options)),
      dbname_(dbname),
      timeseries_(SanitizeOptions(raw_options).timeseries_window) {
  if (options_.block_cache == nullptr) {
    owned_block_cache_ = read::NewShardedLRUCache(
        options_.block_cache_size, options_.block_cache_shards);
  }

  const FilterPolicy* user_filter_policy = owned_filter_policy_ != nullptr
                                               ? owned_filter_policy_.get()
                                               : options_.filter_policy;
  table_options_.comparator = &internal_comparator_;
  table_options_.filter_policy =
      user_filter_policy != nullptr ? &internal_filter_policy_ : nullptr;
  table_options_.block_cache = options_.block_cache != nullptr
                                   ? options_.block_cache
                                   : owned_block_cache_.get();
  table_options_.filter_partition_bytes = options_.filter_partition_bytes;
  table_options_.block_size = options_.block_size;
  table_options_.block_restart_interval = options_.block_restart_interval;
  table_options_.compression = options_.compression;
  table_options_.verify_checksums = options_.verify_checksums;

  table_cache_.reset(new TableCache(dbname_, table_options_, env_,
                                    options_.max_open_files,
                                    options_.table_cache_shards));

  // Export read-path cache stats (docs/READ_PATH.md). The block-cache
  // instruments are only bound when this DB owns the cache — a shared
  // fleet cache is bound once by its owner (ShardedDB) instead.
  if (owned_block_cache_ != nullptr) {
    owned_block_cache_->BindStats(
        metrics_registry_.RegisterCounter("cache.block.hits",
                                          "block cache hits"),
        metrics_registry_.RegisterCounter("cache.block.misses",
                                          "block cache misses"),
        metrics_registry_.RegisterCounter("cache.block.evictions",
                                          "block cache evictions"),
        metrics_registry_.RegisterGauge("cache.block.usage_bytes",
                                        "block cache bytes in use"));
    metrics_registry_
        .RegisterGauge("cache.block.capacity_bytes", "block cache capacity")
        ->Set(static_cast<int64_t>(owned_block_cache_->capacity()));
  }
  table_cache_->store()->BindStats(
      metrics_registry_.RegisterCounter("cache.table.hits",
                                        "table cache hits"),
      metrics_registry_.RegisterCounter("cache.table.misses",
                                        "table cache misses"),
      metrics_registry_.RegisterCounter("cache.table.evictions",
                                        "table cache evictions"),
      metrics_registry_.RegisterGauge("cache.table.usage",
                                      "open tables cached"));
  versions_.reset(new VersionSet(dbname_, &options_, table_cache_.get(),
                                 &internal_comparator_));
  for (int m = 0; m < 4; m++) {
    executors_[m] = NewCompactionExecutor(CompactionMode(m));
  }
  scheduler_ = std::make_unique<CompactionScheduler>(
      SchedulerOptions::FromOptions(options_), &metrics_registry_);

  if (!options_.trace_path.empty()) {
    trace_ = std::make_unique<obs::TraceCollector>();
  }
  slowdown_micros_counter_ = metrics_registry_.RegisterCounter(
      "db.write_slowdown_micros",
      "writer time lost to 1ms L0 slowdown delays");
  pause_micros_counter_ = metrics_registry_.RegisterCounter(
      "db.write_pause_micros",
      "writer time fully paused on memtable/L0 backpressure");
  flush_runs_counter_ =
      metrics_registry_.RegisterCounter("flush.runs", "memtable flushes");
  subcompaction_jobs_counter_ = metrics_registry_.RegisterCounter(
      "compaction.subcompaction.jobs",
      "compaction jobs split into key-range sub-jobs");
  subcompaction_runs_counter_ = metrics_registry_.RegisterCounter(
      "compaction.subcompaction.runs",
      "key-range sub-jobs run across split compactions");
  get_micros_hist_ = metrics_registry_.RegisterHistogram(
      "db.get_micros", "foreground Get latency");
  write_micros_hist_ = metrics_registry_.RegisterHistogram(
      "db.write_micros", "foreground Write latency incl. queueing/stalls");
  stall_state_gauge_ = metrics_registry_.RegisterGauge(
      "db.write_stall_state", "0 normal, 1 delayed (L0 slowdown), 2 stopped");

  // Info log: caller-supplied sink, or a LOG file in the DB directory
  // (rotate the previous run's; the dir may not exist yet — Recover has
  // not run — so create it here, idempotently).
  if (options_.info_log != nullptr) {
    info_log_ = options_.info_log;
  } else {
    env_->CreateDir(dbname_);
    env_->RenameFile(InfoLogFileName(dbname_), OldInfoLogFileName(dbname_));
    Status ls = obs::NewFileLogger(env_, InfoLogFileName(dbname_),
                                   &owned_info_log_);
    if (ls.ok()) {
      info_log_ = owned_info_log_.get();
    } else {
      PIPELSM_LOG_WARN("info log creation failed: %s",
                       ls.ToString().c_str());
    }
  }
  obs::Log(info_log_, "opening DB %s (mode=%s%s, subtask=%zu KB)",
           dbname_.c_str(), CompactionModeName(options_.compaction_mode),
           options_.adaptive_compaction ? "+adaptive" : "",
           options_.subtask_bytes >> 10);

  event_logger_ = std::make_unique<EventLogger>(this);
  listeners_.push_back(event_logger_.get());
  listeners_.insert(listeners_.end(), options_.listeners.begin(),
                    options_.listeners.end());

  background_thread_ = std::thread([this] { BackgroundThreadMain(); });
  if (options_.stats_dump_period_sec > 0) {
    stats_thread_ = std::thread([this] { StatsThreadMain(); });
  }
}

DBImpl::~DBImpl() {
  // Wait for background work to finish, then stop the threads.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_.store(true, std::memory_order_release);
    background_work_signal_.notify_all();
    stats_cv_.notify_all();
    vlog_gc_signal_.notify_all();
    while (background_work_active_) {
      background_done_signal_.wait(lock);
    }
  }
  background_work_signal_.notify_all();
  if (background_thread_.joinable()) {
    background_thread_.join();
  }
  if (stats_thread_.joinable()) {
    stats_thread_.join();
  }
  if (vlog_gc_thread_.joinable()) {
    vlog_gc_thread_.join();
  }

  if (mem_ != nullptr) mem_->Unref();
  if (imm_ != nullptr) imm_->Unref();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    obs::Log(info_log_, "closing DB\n%s", StatsReport().c_str());
  }
  FlushTraceBestEffort();
}

void DBImpl::FlushTraceBestEffort() {
  if (trace_ == nullptr) return;
  Status ts = trace_->WriteFile(options_.trace_path);
  if (!ts.ok()) {
    PIPELSM_LOG_WARN("trace export failed: %s", ts.ToString().c_str());
  } else {
    PIPELSM_LOG_INFO("wrote %zu trace spans to %s", trace_->span_count(),
                     options_.trace_path.c_str());
  }
}

void DBImpl::StatsThreadMain() {
  const auto period = std::chrono::seconds(options_.stats_dump_period_sec);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!shutting_down_.load(std::memory_order_acquire)) {
    stats_cv_.wait_for(lock, period);
    if (shutting_down_.load(std::memory_order_acquire)) break;
    std::string report = StatsReport();
    lock.unlock();
    obs::Log(info_log_, "---- periodic stats ----\n%s", report.c_str());
    timeseries_.Sample(metrics_registry_, env_->NowMicros());
    // Keep the on-disk trace current so a crashed/killed run still
    // leaves a loadable file instead of nothing.
    FlushTraceBestEffort();
    lock.lock();
  }
}

Status DBImpl::NewDB() {
  VersionEdit new_db;
  new_db.SetComparatorName(internal_comparator_.user_comparator()->Name());
  new_db.SetLogNumber(0);
  new_db.SetNextFile(2);
  new_db.SetLastSequence(0);

  const std::string manifest = DescriptorFileName(dbname_, 1);
  std::unique_ptr<WritableFile> file;
  Status s = env_->NewWritableFile(manifest, &file);
  if (!s.ok()) return s;
  {
    log::Writer log(file.get());
    std::string record;
    new_db.EncodeTo(&record);
    s = log.AddRecord(record);
    if (s.ok()) {
      s = file->Sync();
    }
    if (s.ok()) {
      s = file->Close();
    }
  }
  if (s.ok()) {
    // Make "CURRENT" file that points to the new manifest file.
    s = SetCurrentFile(env_, dbname_, 1);
  }
  if (!s.ok()) {
    // Either the manifest write or the CURRENT install failed: leave no
    // orphaned manifest behind, so a retried open starts from scratch.
    env_->RemoveFile(manifest);
  }
  return s;
}

Status DBImpl::Recover(VersionEdit* edit, bool* save_manifest) {
  env_->CreateDir(dbname_);

  if (!env_->FileExists(CurrentFileName(dbname_))) {
    if (options_.create_if_missing) {
      Status s = NewDB();
      if (!s.ok()) return s;
    } else {
      return Status::InvalidArgument(
          dbname_, "does not exist (create_if_missing is false)");
    }
  } else if (options_.error_if_exists) {
    return Status::InvalidArgument(dbname_,
                                   "exists (error_if_exists is true)");
  }

  Status s = versions_->Recover();
  if (!s.ok()) return s;

  // Recover from all newer log files than the ones named in the
  // descriptor. Note that PrevLogNumber() is no longer used, we only keep
  // one log.
  const uint64_t min_log = versions_->LogNumber();
  std::vector<std::string> filenames;
  s = env_->GetChildren(dbname_, &filenames);
  if (!s.ok()) return s;

  std::set<uint64_t> expected;
  versions_->AddLiveFiles(&expected);
  uint64_t number;
  FileType type;
  std::vector<uint64_t> logs;
  bool saw_vlog = false;
  uint64_t max_vlog = 0;
  for (const std::string& filename : filenames) {
    if (ParseFileName(filename, &number, &type)) {
      if (type == kVlogFile) {
        // Value-log segments live outside the manifest; the VlogManager
        // recovers them below.
        saw_vlog = true;
        max_vlog = std::max(max_vlog, number);
        continue;
      }
      expected.erase(number);
      if (type == kLogFile && number >= min_log) {
        logs.push_back(number);
      }
    }
  }
  if (!expected.empty()) {
    char buf[50];
    std::snprintf(buf, sizeof(buf), "%d missing table files",
                  static_cast<int>(expected.size()));
    return Status::Corruption(buf);
  }

  // Key-value separation (docs/VALUE_LOG.md): bring up the value log
  // before WAL replay so the file-number counter is already past every
  // existing segment when replay flushes allocate table numbers. Also
  // created when separation is off but segments exist from a previous
  // run, so old pointers stay resolvable.
  if (options_.value_separation_threshold > 0 || saw_vlog) {
    while (versions_->NewFileNumber() < max_vlog) {
      // Advance the shared counter past recovered segment numbers.
    }
    vlog::VlogOptions vopts;
    vopts.segment_size = options_.vlog_segment_size;
    vopts.gc_dead_ratio = options_.vlog_gc_dead_ratio;
    vlog_ = std::make_unique<vlog::VlogManager>(
        env_, dbname_, vopts, &metrics_registry_, info_log_, [this] {
          std::lock_guard<std::mutex> l(mutex_);
          return versions_->NewFileNumber();
        });
    // The append path locks vlog-then-mutex_ (the segment-number
    // allocator re-locks mutex_), so recovery must not call into the
    // vlog while holding mutex_ — allocate the active segment's number
    // first, then drop the lock for the (vlog-locking) calls. Nothing
    // else can touch the half-open DB yet: background work needs a
    // memtable and the GC thread starts after Recover returns.
    const uint64_t active_number = versions_->NewFileNumber();
    uint64_t max_recovered = 0;
    mutex_.unlock();
    s = vlog_->Recover(&max_recovered);
    if (s.ok()) s = vlog_->OpenActive(active_number);
    mutex_.lock();
    if (!s.ok()) return s;
  }

  // Recover in the order in which the logs were generated.
  std::sort(logs.begin(), logs.end());
  SequenceNumber max_sequence = 0;
  for (size_t i = 0; i < logs.size(); i++) {
    s = RecoverLogFile(logs[i], (i == logs.size() - 1), save_manifest, edit,
                       &max_sequence);
    if (!s.ok()) return s;

    // The previous incarnation may not have written any MANIFEST records
    // after allocating this log number, so manually update the file
    // number allocation counter in VersionSet.
    if (versions_->LastSequence() < max_sequence) {
      versions_->SetLastSequence(max_sequence);
    }
    while (versions_->NewFileNumber() < logs[i]) {
      // Advance the counter past the log number.
    }
  }

  return Status::OK();
}

Status DBImpl::RecoverLogFile(uint64_t log_number, bool last_log,
                              bool* save_manifest, VersionEdit* edit,
                              SequenceNumber* max_sequence) {
  struct LogReporter : public log::Reader::Reporter {
    const char* fname;
    Status* status;  // null if options_.paranoid_checks==false
    void Corruption(size_t bytes, const Status& s) override {
      PIPELSM_LOG_WARN("%s: dropping %d bytes; %s", fname,
                       static_cast<int>(bytes), s.ToString().c_str());
      if (this->status != nullptr && this->status->ok()) *this->status = s;
    }
  };

  // Open the log file.
  std::string fname = LogFileName(dbname_, log_number);
  std::unique_ptr<SequentialFile> file;
  Status status = env_->NewSequentialFile(fname, &file);
  if (!status.ok()) {
    return status;
  }

  // Create the log reader.
  LogReporter reporter;
  reporter.fname = fname.c_str();
  reporter.status = (options_.paranoid_checks ? &status : nullptr);
  log::Reader reader(file.get(), &reporter, true /*checksum*/, 0);
  PIPELSM_LOG_INFO("recovering log #%llu",
                   static_cast<unsigned long long>(log_number));

  // Read all the records and add to a memtable.
  std::string scratch;
  Slice record;
  WriteBatch batch;
  int compactions = 0;
  MemTable* mem = nullptr;
  while (reader.ReadRecord(&record, &scratch) && status.ok()) {
    if (record.size() < 12) {
      reporter.Corruption(record.size(),
                          Status::Corruption("log record too small"));
      continue;
    }
    WriteBatchInternal::SetContents(&batch, record);

    if (mem == nullptr) {
      mem = new MemTable(internal_comparator_);
      mem->Ref();
    }
    status = WriteBatchInternal::InsertInto(&batch, mem);
    if (!status.ok()) {
      break;
    }
    const SequenceNumber last_seq = WriteBatchInternal::Sequence(&batch) +
                                    WriteBatchInternal::Count(&batch) - 1;
    if (last_seq > *max_sequence) {
      *max_sequence = last_seq;
    }

    if (mem->ApproximateMemoryUsage() > options_.write_buffer_size) {
      compactions++;
      *save_manifest = true;
      status = WriteLevel0Table(mem, edit, nullptr);
      mem->Unref();
      mem = nullptr;
      if (!status.ok()) {
        // Reflect errors immediately so that conditions like full
        // file-systems cause the DB::Open() to fail.
        break;
      }
    }
  }

  // (LevelDB can reuse the last log file; we always roll a fresh one.)
  (void)last_log;

  if (status.ok() && mem != nullptr && mem->ApproximateMemoryUsage() > 0) {
    *save_manifest = true;
    status = WriteLevel0Table(mem, edit, nullptr);
  }
  if (mem != nullptr) mem->Unref();
  (void)compactions;
  return status;
}

Status DBImpl::WriteLevel0Table(MemTable* mem, VersionEdit* edit,
                                Version* base) {
  Stopwatch sw;
  FileMetaData meta;
  meta.number = versions_->NewFileNumber();
  pending_outputs_.insert(meta.number);
  std::unique_ptr<Iterator> iter(mem->NewIterator());
  PIPELSM_LOG_DEBUG("level-0 table #%llu: started",
                    static_cast<unsigned long long>(meta.number));

  Status s;
  obs::FlushJobInfo flush_info;
  flush_info.job_id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
  {
    // Unlock while doing the actual dump.
    mutex_.unlock();
    uint32_t flush_pid = 0;
    if (trace_ != nullptr) {
      flush_pid = trace_->BeginJob(
          "flush #" + std::to_string(meta.number) +
          (options_.pipelined_flush ? " (pipelined)" : ""));
      trace_->SetLaneName(flush_pid, 0, "memtable dump");
    }
    obs::TraceSpan span(trace_.get(), flush_pid, 0, "flush memtable",
                        "flush");
    if (options_.pipelined_flush) {
      // Flush blocks are tiny (one data block each), so the inter-stage
      // queue must be much deeper than a compaction's sub-task queue to
      // amortize the per-item handoff.
      s = BuildTablePipelined(dbname_, env_, table_options_,
                              table_cache_.get(), iter.get(), &meta,
                              std::max<size_t>(64,
                                               options_.pipeline_queue_depth),
                              &listeners_, &flush_info);
    } else {
      s = BuildTable(dbname_, env_, table_options_, table_cache_.get(),
                     iter.get(), &meta, &listeners_, &flush_info);
    }
    mutex_.lock();
  }
  pending_outputs_.erase(meta.number);

  // Note that if file_size is zero, the file has been deleted and should
  // not be added to the manifest.
  int level = 0;
  if (s.ok() && meta.file_size > 0) {
    const Slice min_user_key = meta.smallest.user_key();
    const Slice max_user_key = meta.largest.user_key();
    if (base != nullptr &&
        options_.compaction_style == CompactionStyle::kLeveled &&
        !base->OverlapInLevel(0, &min_user_key, &max_user_key)) {
      // Push the new sstable to a lower level if there is no overlap:
      // avoids expensive L0 merges for sequential loads. Leveled only —
      // tiered/lazy pickers count runs per level and expect flushes to
      // enter at L0 so data ages strictly downward.
      while (level < config::kNumLevels - 2 &&
             !base->OverlapInLevel(level + 1, &min_user_key, &max_user_key)) {
        level++;
      }
    }
    edit->AddFile(level, meta.number, meta.file_size, meta.smallest,
                  meta.largest);
  }

  metrics_.memtable_flushes++;
  metrics_.bytes_written += meta.file_size;
  flush_runs_counter_->Add(1);
  (void)sw;
  return s;
}

Status DBImpl::CompactMemTable(std::unique_lock<std::mutex>&) {
  assert(imm_ != nullptr);

  // Save the contents of the memtable as a new Table.
  VersionEdit edit;
  Version* base = versions_->current();
  base->Ref();
  Status s = WriteLevel0Table(imm_, &edit, base);
  base->Unref();

  if (s.ok() && shutting_down_.load(std::memory_order_acquire)) {
    s = Status::IOError("deleting DB during memtable compaction");
  }

  // Replace immutable memtable with the generated Table.
  if (s.ok()) {
    edit.SetLogNumber(logfile_number_);  // Earlier logs no longer needed
    s = versions_->LogAndApply(&edit, &mutex_);
  }

  if (s.ok()) {
    // Commit to the new state.
    imm_->Unref();
    imm_ = nullptr;
    has_imm_.store(false, std::memory_order_release);
    RemoveObsoleteFiles();
  }
  // On failure imm_ stays pending; the caller classifies the error
  // (retry vs sticky) and the background loop re-attempts the flush.
  return s;
}

void DBImpl::MaybeFlushImmFromSink() {
  if (!has_imm_.load(std::memory_order_acquire)) return;
  std::unique_lock<std::mutex> lock(mutex_);
  // Several sub-compaction sinks can race here; only the first may flush
  // (the imm_ check re-passes for the others while CompactMemTable is
  // parked in LogAndApply with mutex_ released).
  if (imm_ != nullptr && !imm_flush_in_progress_ && bg_error_.ok()) {
    imm_flush_in_progress_ = true;
    Status s = CompactMemTable(lock);
    imm_flush_in_progress_ = false;
    if (!s.ok()) {
      // Runs on an executor thread: classify here, and the background
      // loop (which still sees imm_ != nullptr) owns the re-attempt.
      HandleBackgroundFailure(s, "flush");
    }
    background_done_signal_.notify_all();
  }
}

void DBImpl::RemoveObsoleteFiles() {
  if (!bg_error_.ok()) {
    // After a background error, we don't know whether a new version may
    // or may not have been committed, so we cannot safely garbage collect.
    return;
  }

  // Make a set of all of the live files.
  std::set<uint64_t> live = pending_outputs_;
  versions_->AddLiveFiles(&live);

  std::vector<std::string> filenames;
  env_->GetChildren(dbname_, &filenames);  // Ignoring errors on purpose
  uint64_t number;
  FileType type;
  std::vector<std::string> files_to_delete;
  for (std::string& filename : filenames) {
    if (ParseFileName(filename, &number, &type)) {
      bool keep = true;
      switch (type) {
        case kLogFile:
          keep = (number >= versions_->LogNumber());
          break;
        case kDescriptorFile:
          keep = (number >= versions_->ManifestFileNumber());
          break;
        case kTableFile:
          keep = (live.find(number) != live.end());
          break;
        case kTempFile:
          keep = (live.find(number) != live.end());
          break;
        case kVlogFile:
          // The value log manages its own segment lifecycle (GC +
          // retirement sweeps, docs/VALUE_LOG.md).
          keep = true;
          break;
        case kCurrentFile:
        case kDBLockFile:
          keep = true;
          break;
      }

      if (!keep) {
        files_to_delete.push_back(std::move(filename));
        if (type == kTableFile) {
          table_cache_->Evict(number);
        }
      }
    }
  }

  PIPELSM_LOG_DEBUG("GC: %zu live, %zu children, deleting %zu",
                    live.size(), filenames.size(), files_to_delete.size());
  // While deleting all files unblock other threads. All files being
  // deleted have unique names which will not collide with newly created
  // files and are therefore safe to delete while allowing other threads
  // to proceed.
  mutex_.unlock();
  for (const std::string& filename : files_to_delete) {
    Status rs = env_->RemoveFile(dbname_ + "/" + filename);
    PIPELSM_LOG_DEBUG("GC: remove %s: %s", filename.c_str(),
                      rs.ToString().c_str());
  }
  mutex_.lock();
}

void DBImpl::RecordBackgroundError(const Status& s, const char* source) {
  if (bg_error_.ok()) {
    bg_error_ = s;
    background_done_signal_.notify_all();
    obs::BackgroundErrorInfo info;
    info.status = s;
    info.source = source;
    info.attempt = bg_retry_attempts_;
    info.max_attempts = options_.max_background_retries;
    info.sticky = true;
    for (obs::EventListener* l : listeners_) {
      l->OnBackgroundError(info);
    }
    // First (and only) transition into the error state: export the trace
    // now, while the spans leading up to the failure are still in memory
    // — the clean-close path may never run.
    FlushTraceBestEffort();
  }
}

uint64_t DBImpl::BackoffMicros(int attempt) const {
  // attempt r (1-based) waits base * 2^(r-1), capped.
  uint64_t backoff = options_.background_retry_backoff_micros;
  for (int i = 1; i < attempt; i++) {
    if (backoff >= options_.background_retry_backoff_max_micros) break;
    backoff *= 2;
  }
  return std::min(backoff, options_.background_retry_backoff_max_micros);
}

void DBImpl::HandleBackgroundFailure(const Status& s, const char* source) {
  if (s.ok() || shutting_down_.load(std::memory_order_acquire)) return;
  if (!bg_error_.ok()) return;  // already sticky
  // Only I/O errors are plausibly transient (full disk, injected fault,
  // flaky device). Corruption means on-disk state is already wrong —
  // retrying re-reads the same bytes — so it is sticky immediately.
  const bool transient = s.IsIOError();
  if (transient && bg_retry_attempts_ < options_.max_background_retries) {
    bg_retry_attempts_++;
    bg_retry_pending_ = true;
    obs::BackgroundErrorInfo info;
    info.status = s;
    info.source = source;
    info.attempt = bg_retry_attempts_;
    info.max_attempts = options_.max_background_retries;
    info.sticky = false;
    for (obs::EventListener* l : listeners_) {
      l->OnBackgroundError(info);
    }
  } else {
    RecordBackgroundError(s, source);
  }
}

void DBImpl::SetStallCondition(obs::WriteStallCondition condition) {
  if (condition == stall_condition_) return;
  obs::WriteStallInfo info;
  info.previous = stall_condition_;
  info.condition = condition;
  stall_condition_ = condition;
  stall_state_gauge_->Set(static_cast<int64_t>(condition));
  for (obs::EventListener* l : listeners_) {
    l->OnWriteStallChange(info);
  }
}

std::string DBImpl::StatsReport() {
  std::string out;
  char buf[300];
  std::snprintf(buf, sizeof(buf),
                "compactions=%llu flushes=%llu read=%.1fMB written=%.1fMB "
                "stalls=%.1fs %s\n",
                static_cast<unsigned long long>(metrics_.compactions),
                static_cast<unsigned long long>(metrics_.memtable_flushes),
                metrics_.bytes_read / 1048576.0,
                metrics_.bytes_written / 1048576.0,
                metrics_.stall_micros / 1e6,
                versions_->LevelSummary().c_str());
  out.append(buf);
  out.append(metrics_.profile.ToString());
  // Both registries below carry their own locks; holding mutex_ across
  // the snapshots is safe (neither ever takes mutex_).
  out.append("metrics ");
  out.append(metrics_registry_.ToJson());
  out.append("\nadvisor ");
  out.append(advisor_.ToJson());
  out.append("\nscheduler ");
  out.append(scheduler_->ToJson());
  out.push_back('\n');
  return out;
}

void DBImpl::MaybeScheduleCompaction() {
  if (background_work_pending_) {
    // Already scheduled.
  } else if (shutting_down_.load(std::memory_order_acquire)) {
    // DB is being deleted; no more background compactions.
  } else if (!bg_error_.ok()) {
    // Already got an error; no more changes.
  } else if (imm_ == nullptr && manual_compaction_ == nullptr &&
             !versions_->NeedsCompaction()) {
    // No work to be done.
  } else {
    background_work_pending_ = true;
    background_work_signal_.notify_one();
  }
}

void DBImpl::BackgroundThreadMain() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    while (!background_work_pending_ &&
           !shutting_down_.load(std::memory_order_acquire)) {
      background_work_signal_.wait(lock);
    }
    if (shutting_down_.load(std::memory_order_acquire)) {
      break;
    }
    background_work_active_ = true;
    Status status = BackgroundCompaction(lock);
    if (!status.ok()) {
      HandleBackgroundFailure(
          status, imm_ != nullptr ? "flush" : "compaction");
    }
    background_work_active_ = false;
    background_work_pending_ = false;

    if (status.ok() && !bg_retry_pending_) {
      bg_retry_attempts_ = 0;  // healthy again: reset the retry budget
    } else if (bg_retry_pending_) {
      // A transient failure consumed one retry. Back off (interruptibly —
      // shutdown must not wait out the full delay), then re-arm the same
      // work. MaybeScheduleCompaction below sees the still-pending
      // imm_/compaction trigger and the loop re-runs it.
      bg_retry_pending_ = false;
      const uint64_t backoff = BackoffMicros(bg_retry_attempts_);
      obs::Log(info_log_,
               "EVENT bg_retry attempt=%d/%d backoff_micros=%llu",
               bg_retry_attempts_, options_.max_background_retries,
               static_cast<unsigned long long>(backoff));
      background_work_signal_.wait_for(
          lock, std::chrono::microseconds(backoff), [this] {
            return shutting_down_.load(std::memory_order_acquire);
          });
      background_work_pending_ = true;
    }

    // Previous compaction may have produced too many files in a level, so
    // reschedule another compaction if needed.
    MaybeScheduleCompaction();
    background_done_signal_.notify_all();
  }
  background_work_active_ = false;
  background_done_signal_.notify_all();
}

Status DBImpl::BackgroundCompaction(std::unique_lock<std::mutex>& lock) {
  if (imm_ != nullptr && !imm_flush_in_progress_) {
    imm_flush_in_progress_ = true;
    Status s = CompactMemTable(lock);
    imm_flush_in_progress_ = false;
    return s;
  }

  Compaction* c;
  bool is_manual = (manual_compaction_ != nullptr);
  InternalKey manual_end;
  if (is_manual) {
    ManualCompaction* m = manual_compaction_;
    c = versions_->CompactRange(m->level, m->begin, m->end);
    m->done = (c == nullptr);
    if (c != nullptr) {
      manual_end = c->input(0, c->num_input_files(0) - 1)->largest;
    }
  } else {
    c = versions_->PickCompaction();
  }

  Status status;
  bool ran_compaction = false;
  if (c == nullptr) {
    // Nothing to do.
  } else if (!is_manual && c->IsTrivialMove()) {
    // Move file to the output level.
    assert(c->num_input_files(0) == 1);
    FileMetaData* f = c->input(0, 0);
    c->edit()->RemoveFile(c->level(), f->number);
    c->edit()->AddFile(c->output_level(), f->number, f->file_size,
                       f->smallest, f->largest);
    status = versions_->LogAndApply(c->edit(), &mutex_);
    PIPELSM_LOG_DEBUG("moved #%llu to level-%d %lld bytes: %s",
                      static_cast<unsigned long long>(f->number),
                      c->output_level(), static_cast<long long>(f->file_size),
                      versions_->LevelSummary().c_str());
  } else {
    status = DoCompactionWork(lock, c);
    ran_compaction = true;
  }
  // Release the compaction's input-version ref before collecting garbage:
  // while it is held, the consumed inputs still count as live and would
  // survive until some later (possibly never-run) GC pass.
  delete c;
  if (ran_compaction) RemoveObsoleteFiles();

  if (status.ok()) {
    // Done.
  } else if (shutting_down_.load(std::memory_order_acquire)) {
    // Ignore compaction errors found during shutting down.
  } else {
    PIPELSM_LOG_WARN("compaction error: %s", status.ToString().c_str());
  }

  if (is_manual) {
    ManualCompaction* m = manual_compaction_;
    if (!status.ok()) {
      m->done = true;
    }
    if (!m->done) {
      // We only compacted part of the requested range. Update *m to the
      // range that is left to be compacted.
      m->tmp_storage = manual_end;
      m->begin = &m->tmp_storage;
    }
    manual_compaction_ = nullptr;
  }
  return status;
}

Status DBImpl::DoCompactionWork(std::unique_lock<std::mutex>& lock,
                                Compaction* c) {
  Stopwatch total_sw;

  // Admission-time scheduling: ask the scheduler which procedure and
  // parallelism the advisor's current decayed profile calls for. The
  // decision is copied into the per-job CompactionJobOptions here, under
  // mutex_, and never re-read from shared state mid-run — the executors
  // only ever see their own job copy (see docs/TUNING.md).
  //
  // With a fleet governor (Options::compaction_governor, docs/SHARDING.md)
  // the admission instead blocks — outside mutex_ — until the fleet hands
  // this engine a budget share. The wait aborts on shutdown, and for
  // non-manual jobs also when a flush becomes pending: this engine's sole
  // background thread must not sit in the arbiter queue while writers
  // stall on imm_. A manual compaction never yields to a flush, because
  // BackgroundCompaction advances the manual cursor whether or not work
  // ran — yielding would silently skip the range.
  SchedulerDecision decision;
  uint64_t grant_id = 0;
  CompactionGovernor* const governor = options_.compaction_governor;
  if (governor != nullptr) {
    CompactionAdmissionRequest request;
    request.shard_id = options_.shard_id;
    request.profile = advisor_.Profile();
    request.advisor_jobs = advisor_.jobs();
    request.level = c->level();
    request.predicted_write_amp = c->predicted_write_amp();
    for (int which = 0; which < 2; which++) {
      for (const FileMetaData* f : c->inputs(which)) {
        request.input_bytes += f->file_size;
      }
    }
    const bool manual = manual_compaction_ != nullptr;
    lock.unlock();
    CompactionGrant grant = governor->Admit(request, [this, manual] {
      return shutting_down_.load(std::memory_order_acquire) ||
             (!manual && has_imm_.load(std::memory_order_acquire));
    });
    lock.lock();
    if (!grant.granted) {
      if (shutting_down_.load(std::memory_order_acquire)) {
        return Status::IOError("deleting DB during compaction");
      }
      // Yield the slot to the pending flush; the background loop
      // re-schedules this compaction right after (`delete c` in the
      // caller releases the pinned input version).
      return Status::OK();
    }
    decision = grant.decision;
    grant_id = grant.id;
  } else {
    decision = scheduler_->Admit(advisor_.Profile(), advisor_.jobs());
  }
  CompactionExecutor* const executor =
      executors_[static_cast<int>(decision.mode)].get();

  PIPELSM_LOG_INFO("compacting %d@%d + %d@%d files [%s]",
                   c->num_input_files(0), c->level(), c->num_input_files(1),
                   c->output_level(), executor->name());

  CompactionJobOptions job;
  job.icmp = &internal_comparator_;
  job.subtask_bytes = options_.subtask_bytes;
  job.block_size = options_.block_size;
  job.block_restart_interval = options_.block_restart_interval;
  job.compression = options_.compression;
  job.max_output_file_size = c->MaxOutputFileSize();
  job.read_parallelism = decision.read_parallelism;
  job.compute_parallelism = decision.compute_parallelism;
  job.queue_depth = options_.pipeline_queue_depth;
  job.time_dilation = options_.compaction_time_dilation;
  job.filter_policy = table_options_.filter_policy;
  job.filter_partition_bytes = table_options_.filter_partition_bytes;
  job.metrics = &metrics_registry_;
  job.trace = trace_.get();
  if (vlog_ != nullptr) {
    // Dropped pointer entries mean their value-log frames just became
    // dead bytes. CreditDiscard is thread-safe (C-PPCP fires it from
    // several compute workers at once) and never touches mutex_.
    job.on_drop_entry = [this](ValueType type, const Slice& value) {
      if (type == kTypeValuePointer) vlog_->CreditDiscard(value);
    };
  }

  obs::CompactionJobInfo job_info;
  job_info.job_id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
  job_info.level = c->level();
  job_info.output_level = c->output_level();
  job_info.style = CompactionStyleName(options_.compaction_style);
  job_info.predicted_write_amp = c->predicted_write_amp();
  job_info.input_files = c->num_input_files(0) + c->num_input_files(1);
  job_info.read_parallelism = decision.read_parallelism;
  job_info.compute_parallelism = decision.compute_parallelism;
  job_info.adaptive = decision.adaptive;
  job_info.scheduler_rationale = decision.rationale;
  job.listeners = &listeners_;
  job.job_info = &job_info;

  obs::Log(info_log_,
           "EVENT adaptive_decision job=%llu level=%d output_level=%d "
           "style=%s predicted_write_amp=%.2f procedure=%s "
           "read_k=%d compute_k=%d adaptive=%d rationale=\"%s\"",
           static_cast<unsigned long long>(job_info.job_id), c->level(),
           c->output_level(), CompactionStyleName(options_.compaction_style),
           c->predicted_write_amp(),
           CompactionModeName(decision.mode), decision.read_parallelism,
           decision.compute_parallelism, decision.adaptive ? 1 : 0,
           decision.rationale.c_str());

  if (snapshots_.empty()) {
    job.smallest_snapshot = versions_->LastSequence();
  } else {
    job.smallest_snapshot = snapshots_.front()->sequence_number();
  }

  // Tombstones in a sub-range may be dropped iff no level below the output
  // holds any key of that range. Evaluated at plan time on the pinned
  // input version, so it is safe against concurrent version installs.
  job.range_is_base_level = [c](const SubTaskPlan& plan) {
    Slice lo(plan.lo_user_key), hi(plan.hi_user_key);
    return c->RangeIsBaseLevel(plan.unbounded_lo ? nullptr : &lo,
                               plan.unbounded_hi ? nullptr : &hi);
  };

  // Open all input tables (level first, then level+1, preserving L0
  // newest-to-oldest is unnecessary: internal keys carry sequence).
  std::vector<std::shared_ptr<Table>> inputs;
  Status status;
  uint64_t input_bytes = 0;
  for (int which = 0; which < 2 && status.ok(); which++) {
    for (const FileMetaData* f : c->inputs(which)) {
      std::shared_ptr<Table> t;
      status = table_cache_->GetTable(f->number, f->file_size, &t);
      if (!status.ok()) break;
      inputs.push_back(std::move(t));
      input_bytes += f->file_size;
    }
  }

  // ---- key-range sub-compaction fan-out (docs/COMPACTION.md) ----
  // A large job may split at input-table boundary keys into disjoint
  // (lo, hi] sub-ranges, each run by its own executor instance over the
  // same open inputs. The fan-out is clamped by Options and by the
  // parallelism this job was just granted, so a split never
  // oversubscribes the scheduler/governor budget.
  std::vector<std::string> split_keys;
  if (status.ok() && options_.max_subcompactions > 1) {
    uint64_t want = static_cast<uint64_t>(
        std::min(options_.max_subcompactions,
                 std::max(decision.read_parallelism,
                          decision.compute_parallelism)));
    // Size floor: a sub-range under ~2 sub-tasks of input is thread
    // churn, not parallelism.
    const uint64_t floor_bytes =
        2 * static_cast<uint64_t>(options_.subtask_bytes);
    if (floor_bytes > 0) {
      want = std::min(want, std::max<uint64_t>(1, input_bytes / floor_bytes));
    }
    if (want > 1) {
      split_keys = PickSubcompactionSplits(
          c, internal_comparator_.user_comparator(),
          static_cast<int>(want));
    }
  }
  const int fanout = static_cast<int>(split_keys.size()) + 1;
  job_info.subcompactions = fanout;

  CompactionSinkImpl sink(this);
  StepProfile profile;
  std::vector<std::unique_ptr<CompactionSinkImpl>> sub_sinks;
  if (status.ok() && fanout == 1) {
    job_info.input_bytes = input_bytes;
    // Release the mutex while the executor runs (the expensive part).
    // The executor fires OnCompactionBegin/Completed on listeners_ from
    // this (unlocked) thread.
    lock.unlock();
    status = executor->Run(job, inputs, &sink, &profile);
    lock.lock();
  } else if (status.ok()) {
    job_info.input_bytes = input_bytes;
    std::vector<CompactionJobOptions> sub_jobs(fanout, job);
    std::vector<obs::CompactionJobInfo> sub_infos(fanout);
    std::vector<std::unique_ptr<CompactionExecutor>> sub_execs;
    std::vector<StepProfile> sub_profiles(fanout);
    std::vector<Status> sub_status(fanout);
    for (int i = 0; i < fanout; i++) {
      sub_sinks.emplace_back(new CompactionSinkImpl(this));
      CompactionJobOptions& sj = sub_jobs[i];
      // Each sub-job runs a fresh executor instance on an equal share of
      // the granted parallelism (floor 1). The parent fires the listener
      // callbacks once for the whole job, so sub-jobs carry none — but
      // they keep their own job_info so the executors still report
      // per-sub subtask/output/profile totals to merge below.
      sj.read_parallelism = std::max(1, decision.read_parallelism / fanout);
      sj.compute_parallelism =
          std::max(1, decision.compute_parallelism / fanout);
      sj.listeners = nullptr;
      sj.job_info = &sub_infos[i];
      if (i > 0) {
        sj.range_unbounded_lo = false;
        sj.range_lo_user_key = split_keys[i - 1];
      }
      if (i < fanout - 1) {
        sj.range_unbounded_hi = false;
        sj.range_hi_user_key = split_keys[i];
      }
      sub_execs.push_back(NewCompactionExecutor(decision.mode));
    }
    subcompacted_jobs_++;
    subcompactions_run_ += fanout;
    if (subcompaction_jobs_counter_ != nullptr) {
      subcompaction_jobs_counter_->Add(1);
      subcompaction_runs_counter_->Add(fanout);
    }
    Stopwatch wall_sw;
    lock.unlock();
    // One Begin/Completed pair for the whole job: listeners (and through
    // them the advisor) digest a single job with merged totals. Begin
    // fires before planning, so subtasks is still 0 here.
    for (obs::EventListener* l : listeners_) l->OnCompactionBegin(job_info);
    std::vector<std::thread> threads;
    threads.reserve(fanout - 1);
    for (int i = 1; i < fanout; i++) {
      threads.emplace_back([&, i] {
        sub_status[i] = sub_execs[i]->Run(sub_jobs[i], inputs,
                                          sub_sinks[i].get(),
                                          &sub_profiles[i]);
      });
    }
    sub_status[0] = sub_execs[0]->Run(sub_jobs[0], inputs, sub_sinks[0].get(),
                                      &sub_profiles[0]);
    for (std::thread& t : threads) t.join();
    uint64_t sub_output_bytes = 0;
    uint64_t sub_subtasks = 0;
    for (int i = 0; i < fanout; i++) {
      if (status.ok() && !sub_status[i].ok()) status = sub_status[i];
      profile.Merge(sub_profiles[i]);
      sub_subtasks += sub_infos[i].subtasks;
      sub_output_bytes += sub_infos[i].output_bytes;
      obs::Log(info_log_,
               "EVENT subcompaction job=%llu sub=%d/%d lo=%s hi=%s "
               "subtasks=%llu output_bytes=%llu status=%s",
               static_cast<unsigned long long>(job_info.job_id), i + 1,
               fanout, i > 0 ? split_keys[i - 1].c_str() : "-inf",
               i < fanout - 1 ? split_keys[i].c_str() : "+inf",
               static_cast<unsigned long long>(sub_infos[i].subtasks),
               static_cast<unsigned long long>(sub_infos[i].output_bytes),
               sub_status[i].ok() ? "ok"
                                  : sub_status[i].ToString().c_str());
    }
    job_info.executor = executor->name();
    job_info.subtasks = sub_subtasks;
    job_info.output_bytes = sub_output_bytes;
    job_info.profile = profile;
    job_info.wall_micros =
        static_cast<uint64_t>(wall_sw.ElapsedNanos() / 1000);
    job_info.status = status;
    for (obs::EventListener* l : listeners_) {
      l->OnCompactionCompleted(job_info);
    }
    lock.lock();
  }

  // The job is over (ran or failed to open inputs): hand the fleet share
  // back before the install, so a waiting shard can start compacting
  // while this one applies its version edit.
  if (governor != nullptr) governor->Release(grant_id);

  if (status.ok() && shutting_down_.load(std::memory_order_acquire)) {
    status = Status::IOError("deleting DB during compaction");
  }

  if (status.ok()) {
    // Install the results. Sub-jobs are concatenated in sub-range order,
    // so outputs ascend in key space and the whole fan-out lands in ONE
    // VersionEdit: readers see either the old inputs or every new output,
    // never a half-installed split.
    c->AddInputDeletions(c->edit());
    uint64_t output_bytes = 0;
    auto install = [&](const OutputMeta& out) {
      c->edit()->AddFile(c->output_level(), out.file_number, out.file_size,
                         out.smallest, out.largest);
      output_bytes += out.file_size;
    };
    if (fanout == 1) {
      for (const OutputMeta& out : sink.outputs()) install(out);
    } else {
      for (const auto& ss : sub_sinks) {
        for (const OutputMeta& out : ss->outputs()) install(out);
      }
    }
    status = versions_->LogAndApply(c->edit(), &mutex_);
    metrics_.compactions++;
    metrics_.bytes_read += input_bytes;
    metrics_.bytes_written += output_bytes;
    metrics_.compaction_bytes_written += output_bytes;
    metrics_.profile.Merge(profile);
    last_predicted_write_amp_ = c->predicted_write_amp();
  }

  // Whether or not the edit was installed, stop protecting every output
  // the job allocated — including files abandoned half-written on an
  // error path. Uninstalled ones become garbage that RemoveObsoleteFiles
  // collects (on a sticky error, the next successful reopen's sweep).
  for (uint64_t number : sink.allocated()) {
    pending_outputs_.erase(number);
  }
  for (const auto& ss : sub_sinks) {
    for (uint64_t number : ss->allocated()) {
      pending_outputs_.erase(number);
    }
  }

  c->ReleaseInputs();
  PIPELSM_LOG_INFO("compacted to: %s (%.1f MB in, wall %.0f ms)",
                   versions_->LevelSummary().c_str(),
                   input_bytes / 1048576.0, total_sw.ElapsedNanos() * 1e-6);

  // The drop credits above may have pushed a segment past the GC dead
  // ratio; wake the value-log GC thread to check (NeedsGc is lock-free).
  if (vlog_ != nullptr && vlog_->NeedsGc()) vlog_gc_signal_.notify_one();
  return status;
}

Iterator* DBImpl::NewInternalIterator(const ReadOptions& options,
                                      SequenceNumber* latest_snapshot) {
  TableReadOptions tro;
  tro.verify_checksums = options.verify_checksums;
  tro.fill_cache = options.fill_cache;
  std::lock_guard<std::mutex> lock(mutex_);
  *latest_snapshot = versions_->LastSequence();

  // Collect together all needed child iterators.
  std::vector<Iterator*> list;
  list.push_back(mem_->NewIterator());
  MemTable* mem = mem_;
  mem->Ref();
  MemTable* imm = nullptr;
  if (imm_ != nullptr) {
    list.push_back(imm_->NewIterator());
    imm = imm_;
    imm->Ref();
  }
  Version* current = versions_->current();
  current->AddIterators(tro, &list);
  Iterator* internal_iter =
      NewMergingIterator(&internal_comparator_, list.data(),
                         static_cast<int>(list.size()));
  current->Ref();

  // Pin the latest sequence while the iterator lives so value-log GC
  // cannot delete a retired segment the iterator may still resolve
  // pointers from. (Explicit-snapshot reads are covered by snapshots_.)
  std::multiset<SequenceNumber>::iterator pin;
  const bool pinned = (vlog_ != nullptr);
  if (pinned) pin = vlog_pins_.insert(*latest_snapshot);

  internal_iter->RegisterCleanup([this, mem, imm, current, pin, pinned] {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      mem->Unref();
      if (imm != nullptr) imm->Unref();
      current->Unref();
      if (pinned) vlog_pins_.erase(pin);
    }
    if (pinned) SweepRetiredVlogSegments();
  });
  return internal_iter;
}

Status DBImpl::Get(const ReadOptions& options, const Slice& key,
                   std::string* value) {
  Stopwatch op_sw;
  Status s;
  std::unique_lock<std::mutex> lock(mutex_);
  SequenceNumber snapshot;
  if (options.snapshot != nullptr) {
    snapshot =
        static_cast<const SnapshotImpl*>(options.snapshot)->sequence_number();
  } else {
    snapshot = versions_->LastSequence();
  }

  MemTable* mem = mem_;
  MemTable* imm = imm_;
  Version* current = versions_->current();
  mem->Ref();
  if (imm != nullptr) imm->Ref();
  current->Ref();

  // Pin the read sequence so value-log GC cannot delete a retired
  // segment between us reading a pointer and resolving it.
  std::multiset<SequenceNumber>::iterator pin;
  if (vlog_ != nullptr) pin = vlog_pins_.insert(snapshot);

  bool is_pointer = false;
  {
    lock.unlock();
    // First look in the memtable, then in the immutable memtable (if
    // any), then in the sorted files.
    LookupKey lkey(key, snapshot);
    if (mem->Get(lkey, value, &s, &is_pointer)) {
      // Done
    } else if (imm != nullptr && imm->Get(lkey, value, &s, &is_pointer)) {
      // Done
    } else {
      TableReadOptions tro;
      tro.verify_checksums = options.verify_checksums;
      tro.fill_cache = options.fill_cache;
      s = current->Get(tro, lkey, value, &is_pointer);
    }
    if (s.ok() && is_pointer) {
      // Swap the encoded location for the value it points at.
      vlog::ValueLocation loc;
      if (vlog_ == nullptr || !vlog::DecodeValueLocation(Slice(*value), &loc)) {
        s = Status::Corruption(
            "value pointer without a value log to resolve it");
      } else {
        std::string resolved;
        s = vlog_->Read(loc, &resolved);
        if (s.ok()) value->swap(resolved);
      }
    }
    lock.lock();
  }

  mem->Unref();
  if (imm != nullptr) imm->Unref();
  current->Unref();
  if (vlog_ != nullptr) vlog_pins_.erase(pin);
  lock.unlock();
  get_micros_hist_->Observe(op_sw.ElapsedNanos() / 1e3);
  return s;
}

Iterator* DBImpl::NewIterator(const ReadOptions& options) {
  SequenceNumber latest_snapshot;
  Iterator* iter = NewInternalIterator(options, &latest_snapshot);
  return NewDBIterator(
      internal_comparator_.user_comparator(), iter,
      (options.snapshot != nullptr
           ? static_cast<const SnapshotImpl*>(options.snapshot)
                 ->sequence_number()
           : latest_snapshot),
      vlog_.get());
}

const Snapshot* DBImpl::GetSnapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  SnapshotImpl* snapshot = new SnapshotImpl(versions_->LastSequence());
  snapshots_.push_back(snapshot);
  snapshot->pos_ = std::prev(snapshots_.end());
  return snapshot;
}

void DBImpl::ReleaseSnapshot(const Snapshot* snapshot) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const SnapshotImpl* impl = static_cast<const SnapshotImpl*>(snapshot);
    snapshots_.erase(impl->pos_);
    delete impl;
  }
  // The released snapshot may have been the last pin holding a retired
  // value-log segment alive (lock order: never call vlog_ under mutex_).
  SweepRetiredVlogSegments();
}

Status DBImpl::Put(const WriteOptions& o, const Slice& key,
                   const Slice& val) {
  WriteBatch batch;
  batch.Put(key, val);
  return Write(o, &batch);
}

Status DBImpl::Delete(const WriteOptions& o, const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(o, &batch);
}

Status DBImpl::Write(const WriteOptions& options, WriteBatch* updates) {
  Stopwatch op_sw;
  Writer w(&mutex_);
  w.batch = updates;
  w.sync = options.sync;
  w.done = false;

  std::unique_lock<std::mutex> lock(mutex_);
  writers_.push_back(&w);
  while (!w.done && &w != writers_.front()) {
    w.cv.wait(lock);
  }
  if (w.done) {
    lock.unlock();
    write_micros_hist_->Observe(op_sw.ElapsedNanos() / 1e3);
    return w.status;
  }

  // We are the leader now.
  Status status = MakeRoomForWrite(lock, updates == nullptr);
  uint64_t last_sequence = versions_->LastSequence();
  Writer* last_writer = &w;
  if (status.ok() && updates != nullptr) {
    // Fold the followers queued behind us into one group.
    WriteBatch* write_batch = BuildBatchGroup(&last_writer);
    WriteBatchInternal::SetSequence(write_batch, last_sequence + 1);
    last_sequence += WriteBatchInternal::Count(write_batch);

    // Write to the WAL and apply to the memtable. The mutex can be
    // released here: &w is the only writer allowed to touch the log and
    // the memtable while it heads the queue (same protocol as LevelDB).
    bool sync_error = false;
    std::vector<uint64_t> vlog_touched;
    {
      lock.unlock();
      WriteBatch* final_batch = write_batch;
      if (vlog_ != nullptr && options_.value_separation_threshold > 0) {
        bool any = false;
        status = SeparateLargeValues(write_batch, &vlog_batch_, &vlog_touched,
                                     &any);
        if (status.ok() && any) {
          // Durability order (docs/VALUE_LOG.md): the value frames must
          // be on stable storage before their pointers can enter the
          // WAL, so a WAL-durable pointer never dangles. On failure the
          // whole group fails; the appended frames become dead bytes GC
          // reclaims.
          status = vlog_->Sync();
          final_batch = &vlog_batch_;
        }
      }
      if (status.ok()) {
        status = log_->AddRecord(WriteBatchInternal::Contents(final_batch));
        if (!status.ok()) {
          sync_error = true;  // AddRecord may have written a partial record
        } else if (options.sync) {
          status = logfile_->Sync();
          sync_error = !status.ok();
        }
        if (status.ok()) {
          status = WriteBatchInternal::InsertInto(final_batch, mem_);
        }
      }
      if (!vlog_touched.empty()) vlog_->ReleaseAppends(vlog_touched);
      lock.lock();
    }
    if (sync_error) {
      // The state of the log is indeterminate: the record we just tried
      // to add may or may not be there, and a torn tail can make the log
      // reader drop *later* records in the same block. Freeze writes
      // until Resume() rolls the WAL (or the DB is reopened).
      RecordBackgroundError(status, "wal");
    }
    if (write_batch == &tmp_batch_) tmp_batch_.Clear();
    vlog_batch_.Clear();

    versions_->SetLastSequence(last_sequence);
  }

  while (true) {
    Writer* ready = writers_.front();
    writers_.pop_front();
    if (ready != &w) {
      ready->status = status;
      ready->done = true;
      ready->cv.notify_one();
    }
    if (ready == last_writer) break;
  }

  // Notify new head of the write queue.
  if (!writers_.empty()) {
    writers_.front()->cv.notify_one();
  }

  lock.unlock();
  write_micros_hist_->Observe(op_sw.ElapsedNanos() / 1e3);
  return status;
}

// REQUIRES: mutex held; writers_ non-empty; first writer has a non-null
// batch.
WriteBatch* DBImpl::BuildBatchGroup(Writer** last_writer) {
  assert(!writers_.empty());
  Writer* first = writers_.front();
  WriteBatch* result = first->batch;
  assert(result != nullptr);

  size_t size = WriteBatchInternal::ByteSize(first->batch);

  // Allow the group to grow up to a maximum size, but if the original
  // write is small, limit the growth so we do not slow down the small
  // write too much.
  size_t max_size = 1 << 20;
  if (size <= (128 << 10)) {
    max_size = size + (128 << 10);
  }

  *last_writer = first;
  auto iter = writers_.begin();
  ++iter;  // Advance past "first"
  for (; iter != writers_.end(); ++iter) {
    Writer* w = *iter;
    if (w->sync && !first->sync) {
      // Do not include a sync write into a batch handled by a non-sync
      // write.
      break;
    }

    if (w->batch != nullptr) {
      size += WriteBatchInternal::ByteSize(w->batch);
      if (size > max_size) {
        // Do not make batch too big.
        break;
      }

      // Append to *result.
      if (result == first->batch) {
        // Switch to temporary batch instead of disturbing caller's batch.
        result = &tmp_batch_;
        assert(WriteBatchInternal::Count(result) == 0);
        WriteBatchInternal::Append(result, first->batch);
      }
      WriteBatchInternal::Append(result, w->batch);
    }
    *last_writer = w;
  }
  return result;
}

namespace {

// Rewrites a write group so every Put whose value crosses the separation
// threshold becomes a value-log append + a PutPointer record; everything
// else passes through unchanged. One output record per input record, so
// the sequence/count bookkeeping of the group is preserved.
class SeparatingHandler : public WriteBatch::Handler {
 public:
  SeparatingHandler(vlog::VlogManager* vlog, size_t threshold,
                    WriteBatch* out, std::vector<uint64_t>* touched)
      : vlog_(vlog), threshold_(threshold), out_(out), touched_(touched) {}

  void Put(const Slice& key, const Slice& value) override {
    if (!status_.ok()) return;
    if (value.size() >= threshold_) {
      vlog::ValueLocation loc;
      status_ = vlog_->Add(key, value, &loc);
      if (!status_.ok()) return;
      touched_->push_back(loc.segment);
      any_ = true;
      encoded_.clear();
      vlog::EncodeValueLocation(&encoded_, loc);
      out_->PutPointer(key, Slice(encoded_));
    } else {
      out_->Put(key, value);
    }
  }
  void PutPointer(const Slice& key, const Slice& location) override {
    // Already separated (a GC rewrite, or a batch replayed through the
    // shard router): the pointer is opaque here.
    if (status_.ok()) out_->PutPointer(key, location);
  }
  void Delete(const Slice& key) override {
    if (status_.ok()) out_->Delete(key);
  }

  Status status() const { return status_; }
  bool any() const { return any_; }

 private:
  vlog::VlogManager* const vlog_;
  const size_t threshold_;
  WriteBatch* const out_;
  std::vector<uint64_t>* const touched_;
  std::string encoded_;
  Status status_;
  bool any_ = false;
};

}  // namespace

// REQUIRES: called from the write-queue leader, mutex_ NOT held.
Status DBImpl::SeparateLargeValues(WriteBatch* input, WriteBatch* out,
                                   std::vector<uint64_t>* touched,
                                   bool* any) {
  out->Clear();
  SeparatingHandler handler(vlog_.get(),
                            options_.value_separation_threshold, out,
                            touched);
  Status s = input->Iterate(&handler);
  if (s.ok()) s = handler.status();
  *any = handler.any();
  if (s.ok() && *any) {
    WriteBatchInternal::SetSequence(out, WriteBatchInternal::Sequence(input));
  }
  return s;
}

bool DBImpl::GetPointerUnlocked(const Slice& key, SequenceNumber sequence,
                                MemTable* mem, MemTable* imm,
                                Version* current,
                                vlog::ValueLocation* loc) {
  LookupKey lkey(key, sequence);
  std::string raw;
  Status s;
  bool is_pointer = false;
  if (mem->Get(lkey, &raw, &s, &is_pointer)) {
    // Found in the live memtable.
  } else if (imm != nullptr && imm->Get(lkey, &raw, &s, &is_pointer)) {
    // Found in the immutable memtable.
  } else {
    s = current->Get(TableReadOptions(), lkey, &raw, &is_pointer);
  }
  return s.ok() && is_pointer && vlog::DecodeValueLocation(Slice(raw), loc);
}

SequenceNumber DBImpl::MinPinnedSequenceLocked() const {
  SequenceNumber min_pinned = kMaxSequenceNumber;
  if (!snapshots_.empty()) {
    min_pinned = snapshots_.front()->sequence_number();
  }
  if (!vlog_pins_.empty() && *vlog_pins_.begin() < min_pinned) {
    min_pinned = *vlog_pins_.begin();
  }
  return min_pinned;
}

void DBImpl::SweepRetiredVlogSegments() {
  if (vlog_ == nullptr) return;
  SequenceNumber min_pinned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    min_pinned = MinPinnedSequenceLocked();
  }
  vlog_->SweepRetired(min_pinned);
}

void DBImpl::VlogGcThreadMain() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!shutting_down_.load(std::memory_order_acquire)) {
    // Woken by compactions that credited discards; the timeout catches
    // credits from CreditDiscard paths with nobody to signal.
    vlog_gc_signal_.wait_for(lock, std::chrono::milliseconds(250));
    if (shutting_down_.load(std::memory_order_acquire)) break;
    if (!bg_error_.ok() || !vlog_->NeedsGc()) continue;
    lock.unlock();
    uint64_t segment;
    while (!shutting_down_.load(std::memory_order_acquire) &&
           vlog_->PickGcSegment(&segment)) {
      Status s = VlogGcPass(segment);
      if (!s.ok()) {
        PIPELSM_LOG_WARN("vlog GC of segment %llu failed: %s",
                         static_cast<unsigned long long>(segment),
                         s.ToString().c_str());
        break;
      }
    }
    SweepRetiredVlogSegments();
    lock.lock();
  }
}

// One GC pass over a sealed segment: scan every frame, consult the LSM
// for liveness, re-append live values, commit their new pointers through
// the writer queue, then retire the segment. Runs on the dedicated GC
// thread (or a caller of CompactValueLog); never holds mutex_ while
// calling into vlog_.
Status DBImpl::VlogGcPass(uint64_t segment) {
  if (!vlog_->BeginGc(segment)) return Status::OK();

  obs::Log(info_log_, "EVENT vlog_gc_begin segment=%llu",
           static_cast<unsigned long long>(segment));

  // GC competes for the same fleet I/O budget as compactions, at the
  // lowest admission tier (request.is_gc — see src/shard/arbiter.cc).
  uint64_t grant_id = 0;
  CompactionGovernor* const governor = options_.compaction_governor;
  if (governor != nullptr) {
    CompactionAdmissionRequest request;
    request.shard_id = options_.shard_id;
    request.level = -1;
    request.is_gc = true;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      request.profile = advisor_.Profile();
      request.advisor_jobs = advisor_.jobs();
    }
    CompactionGrant grant = governor->Admit(request, [this] {
      return shutting_down_.load(std::memory_order_acquire);
    });
    if (!grant.granted) {
      vlog_->FinishGc(segment, false, 0);
      return Status::OK();
    }
    grant_id = grant.id;
  }

  // Pin the current state for the liveness prefilter. The prefilter only
  // rejects frames that are already dead at `seq` (dead entries never
  // come back to life); survivors are re-checked authoritatively at
  // commit time under writer-queue leadership.
  MemTable* mem;
  MemTable* imm;
  Version* current;
  SequenceNumber seq;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    mem = mem_;
    imm = imm_;
    current = versions_->current();
    mem->Ref();
    if (imm != nullptr) imm->Ref();
    current->Ref();
    seq = versions_->LastSequence();
  }

  // GC is a data-movement job like any compaction, so it reports a
  // StepProfile to the bottleneck advisor: the segment scan is S1 READ,
  // the per-frame liveness checks are its (small) compute, the copies +
  // sync + pointer commit are S7 WRITE. On a separated workload GC moves
  // the value bytes compaction no longer touches, and folding its
  // profile in is what lets the advisor's regime verdict track where the
  // machine's work actually went.
  std::vector<GcRewrite> rewrites;
  std::vector<uint64_t> touched;
  uint64_t live_bytes = 0;
  uint64_t scanned_bytes = 0;
  uint64_t liveness_nanos = 0;
  uint64_t append_nanos = 0;
  Stopwatch pass_timer;
  Status s = vlog_->ScanSegment(
      segment, [&](const Slice& key, const Slice& value,
                   const vlog::ValueLocation& loc) -> Status {
        if (shutting_down_.load(std::memory_order_acquire)) {
          return Status::IOError("deleting DB during vlog GC");
        }
        scanned_bytes += key.size() + value.size() + 10;  // ≈ frame header
        Stopwatch step;
        vlog::ValueLocation cur;
        const bool live =
            GetPointerUnlocked(key, seq, mem, imm, current, &cur) &&
            cur == loc;
        liveness_nanos += step.ElapsedNanos();
        if (!live) return Status::OK();  // dead: deleted or overwritten
        GcRewrite rw;
        rw.key.assign(key.data(), key.size());
        rw.old_loc = loc;
        step.Restart();
        Status add = vlog_->Add(key, value, &rw.new_loc);
        append_nanos += step.ElapsedNanos();
        if (!add.ok()) return add;
        touched.push_back(rw.new_loc.segment);
        live_bytes += value.size();
        rewrites.push_back(std::move(rw));
        return Status::OK();
      });
  const uint64_t scan_nanos = pass_timer.ElapsedNanos();

  // The copies must be durable before their pointers can commit (same
  // order as the foreground write path).
  Stopwatch write_timer;
  if (s.ok() && !rewrites.empty()) s = vlog_->Sync();

  SequenceNumber commit_seq = 0;
  std::vector<vlog::ValueLocation> dead_new;
  if (s.ok()) {
    if (rewrites.empty()) {
      // Whole segment dead: safe to retire once readers pinned at or
      // below the current last sequence are gone.
      std::lock_guard<std::mutex> lock(mutex_);
      commit_seq = versions_->LastSequence();
    } else {
      s = CommitGcRewrites(rewrites, &commit_seq, &dead_new);
    }
  }
  const uint64_t commit_nanos = write_timer.ElapsedNanos();

  if (s.ok() && scanned_bytes > 0) {
    StepProfile profile;
    profile.wall_nanos = pass_timer.ElapsedNanos();
    profile.input_bytes = scanned_bytes;
    profile.output_bytes = live_bytes;
    profile.subtasks =
        std::max<uint64_t>(1, scanned_bytes / options_.subtask_bytes);
    // The scan interleaves frame reads with liveness checks and live-copy
    // appends; subtract those to leave S1's share, and classify the
    // per-frame liveness lookups as the merge-analog compute step.
    const uint64_t overlap = liveness_nanos + append_nanos;
    profile.AddStep(kStepRead, scan_nanos > overlap ? scan_nanos - overlap : 0,
                    scanned_bytes);
    profile.AddStep(kStepSort, liveness_nanos, scanned_bytes);
    profile.AddStep(kStepWrite, append_nanos + commit_nanos, live_bytes);
    advisor_.AddJob(profile);
  }

  if (!touched.empty()) vlog_->ReleaseAppends(touched);
  // Copies whose commit re-check lost a race to a newer write are dead
  // on arrival in their new segment; credit them so its stats stay true.
  for (const vlog::ValueLocation& loc : dead_new) {
    std::string encoded;
    vlog::EncodeValueLocation(&encoded, loc);
    vlog_->CreditDiscard(Slice(encoded));
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    mem->Unref();
    if (imm != nullptr) imm->Unref();
    current->Unref();
  }

  vlog_->FinishGc(segment, s.ok(), commit_seq);
  obs::Log(info_log_,
           "EVENT vlog_gc_end segment=%llu live_values=%zu "
           "live_bytes=%llu status=%s",
           static_cast<unsigned long long>(segment), rewrites.size(),
           static_cast<unsigned long long>(live_bytes),
           s.ToString().c_str());
  if (governor != nullptr) governor->Release(grant_id);
  return s;
}

// Install the new pointers of a GC pass. Takes writer-queue leadership
// (null-batch, like Resume) so it owns log_/mem_ exclusively; re-checks
// each rewrite's old pointer is still current before installing the new
// one, so a foreground overwrite that raced the scan always wins.
// Rewrites that lost the race are reported through *dead_new.
Status DBImpl::CommitGcRewrites(const std::vector<GcRewrite>& rewrites,
                                SequenceNumber* commit_seq,
                                std::vector<vlog::ValueLocation>* dead_new) {
  std::unique_lock<std::mutex> lock(mutex_);
  Writer w(&mutex_);
  w.batch = nullptr;
  for (;;) {
    w.done = false;
    writers_.push_back(&w);
    while (!w.done && &w != writers_.front()) {
      w.cv.wait(lock);
    }
    if (!w.done) break;  // we are the leader
  }

  Status status = bg_error_;
  if (status.ok()) {
    MemTable* mem = mem_;
    MemTable* imm = imm_;
    Version* current = versions_->current();
    mem->Ref();
    if (imm != nullptr) imm->Ref();
    current->Ref();
    const SequenceNumber last_sequence = versions_->LastSequence();
    *commit_seq = last_sequence;

    bool sync_error = false;
    SequenceNumber new_last = last_sequence;
    {
      lock.unlock();
      WriteBatch batch;
      std::string encoded;
      for (const GcRewrite& rw : rewrites) {
        vlog::ValueLocation cur;
        if (GetPointerUnlocked(rw.key, last_sequence, mem, imm, current,
                               &cur) &&
            cur == rw.old_loc) {
          encoded.clear();
          vlog::EncodeValueLocation(&encoded, rw.new_loc);
          batch.PutPointer(rw.key, Slice(encoded));
        } else {
          dead_new->push_back(rw.new_loc);
        }
      }
      if (WriteBatchInternal::Count(&batch) > 0) {
        WriteBatchInternal::SetSequence(&batch, last_sequence + 1);
        new_last = last_sequence + WriteBatchInternal::Count(&batch);
        status = log_->AddRecord(WriteBatchInternal::Contents(&batch));
        if (!status.ok()) {
          sync_error = true;
        } else {
          // Unconditional sync (even for async workloads): FinishGc will
          // delete the old segment, so losing these records in a crash
          // would lose the only surviving copies of the values.
          status = logfile_->Sync();
          sync_error = !status.ok();
        }
        if (status.ok()) {
          // The batch is tiny (pointers only), so skipping
          // MakeRoomForWrite cannot meaningfully overfill the memtable.
          status = WriteBatchInternal::InsertInto(&batch, mem);
        }
      }
      lock.lock();
    }
    if (sync_error) {
      RecordBackgroundError(status, "wal");
    }
    if (status.ok()) {
      versions_->SetLastSequence(new_last);
      *commit_seq = new_last;
    }
    mem->Unref();
    if (imm != nullptr) imm->Unref();
    current->Unref();
  }

  // Release write-queue leadership.
  assert(writers_.front() == &w);
  writers_.pop_front();
  if (!writers_.empty()) {
    writers_.front()->cv.notify_one();
  }
  return status;
}

Status DBImpl::CompactValueLog() {
  if (vlog_ == nullptr) return Status::OK();
  Status s = vlog_->RollActive();
  if (!s.ok()) return s;
  for (uint64_t segment : vlog_->SealedSegments()) {
    if (shutting_down_.load(std::memory_order_acquire)) break;
    Status pass = VlogGcPass(segment);
    if (s.ok()) s = pass;
  }
  SweepRetiredVlogSegments();
  return s;
}

// REQUIRES: mutex_ is held via `lock`.
Status DBImpl::MakeRoomForWrite(std::unique_lock<std::mutex>& lock,
                                bool force) {
  bool allow_delay = !force;
  Status s;
  while (true) {
    if (!bg_error_.ok()) {
      // Yield previous error.
      s = bg_error_;
      break;
    } else if (allow_delay && versions_->NumLevelFiles(0) >=
                                  config::kL0_SlowdownWritesTrigger) {
      // We are getting close to hitting a hard limit on the number of L0
      // files. Rather than delaying a single write by several seconds
      // when we hit the hard limit, start delaying each individual write
      // by 1ms to reduce latency variance. This delay hands over some CPU
      // to the compaction thread in case it is sharing the same core as
      // the writer.
      SetStallCondition(obs::WriteStallCondition::kDelayed);
      Stopwatch sw;
      lock.unlock();
      env_->SleepForMicroseconds(1000);
      lock.lock();
      metrics_.stall_micros += sw.ElapsedNanos() / 1000;
      slowdown_micros_counter_->Add(sw.ElapsedNanos() / 1000);
      allow_delay = false;  // Do not delay a single write more than once
    } else if (!force &&
               (mem_->ApproximateMemoryUsage() <=
                options_.write_buffer_size)) {
      // There is room in current memtable.
      break;
    } else if (imm_ != nullptr) {
      // We have filled up the current memtable, but the previous one is
      // still being compacted, so we wait (the paper's "write pause").
      PIPELSM_LOG_DEBUG("current memtable full; waiting...");
      SetStallCondition(obs::WriteStallCondition::kStopped);
      Stopwatch sw;
      MaybeScheduleCompaction();
      background_done_signal_.wait(lock);
      metrics_.stall_micros += sw.ElapsedNanos() / 1000;
      pause_micros_counter_->Add(sw.ElapsedNanos() / 1000);
    } else if (versions_->NumLevelFiles(0) >= config::kL0_StopWritesTrigger) {
      // There are too many level-0 files ("write pause").
      PIPELSM_LOG_DEBUG("too many L0 files; waiting...");
      SetStallCondition(obs::WriteStallCondition::kStopped);
      Stopwatch sw;
      MaybeScheduleCompaction();
      background_done_signal_.wait(lock);
      metrics_.stall_micros += sw.ElapsedNanos() / 1000;
      pause_micros_counter_->Add(sw.ElapsedNanos() / 1000);
    } else {
      // Attempt to switch to a new memtable and trigger compaction of
      // the old one. The outgoing log must be synced first: records
      // acked before the rotation are durable only once the imm_ flush
      // lands, yet a later sync=true write acks against the NEW log —
      // without this fsync, a power loss between that ack and the flush
      // would drop records a successful sync promised were safe.
      if (logfile_ != nullptr) {
        s = logfile_->Sync();
        if (!s.ok()) {
          // Same hazard as a failed sync in Write(): the old tail is
          // now indeterminate, so freeze writes until Resume() rolls
          // the WAL (or the DB is reopened).
          RecordBackgroundError(s, "wal");
          break;
        }
      }
      const uint64_t new_log_number = versions_->NewFileNumber();
      std::unique_ptr<WritableFile> lfile;
      s = env_->NewWritableFile(LogFileName(dbname_, new_log_number),
                                &lfile);
      if (!s.ok()) {
        // Avoid chewing through file number space in a tight loop.
        versions_->ReuseFileNumber(new_log_number);
        break;
      }
      if (logfile_ != nullptr) {
        // The old log's records are synced above; a failed close can
        // no longer lose acked data, but surface it anyway.
        Status cs = logfile_->Close();
        if (!cs.ok()) {
          PIPELSM_LOG_WARN("closing old WAL #%llu failed: %s",
                           static_cast<unsigned long long>(logfile_number_),
                           cs.ToString().c_str());
        }
      }
      logfile_ = std::move(lfile);
      logfile_number_ = new_log_number;
      log_.reset(new log::Writer(logfile_.get()));
      imm_ = mem_;
      has_imm_.store(true, std::memory_order_release);
      mem_ = new MemTable(internal_comparator_);
      mem_->Ref();
      force = false;  // Do not force another compaction if have room
      MaybeScheduleCompaction();
    }
  }
  // Whatever path ended the loop, backpressure on this writer is over.
  SetStallCondition(obs::WriteStallCondition::kNormal);
  return s;
}

bool DBImpl::GetProperty(const Slice& property, std::string* value) {
  value->clear();
  // "pipelsm.vlog" is answered before taking mutex_: VlogManager has its
  // own lock and its segment-number allocator takes mutex_ (lock order is
  // vlog mutex -> mutex_, never the reverse).
  if (property == Slice("pipelsm.vlog")) {
    if (vlog_ == nullptr) return false;
    *value = vlog_->ToJson();
    return true;
  }
  // "pipelsm.cache" is also answered before taking mutex_: the caches
  // have their own (sharded) locks.
  if (property == Slice("pipelsm.cache")) {
    read::Cache* block = table_options_.block_cache;
    read::Cache* table = table_cache_->store();
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"block\":{\"hits\":%llu,\"misses\":%llu,\"evictions\":%llu,"
        "\"usage\":%llu,\"capacity\":%llu,\"shards\":%llu},"
        "\"table\":{\"hits\":%llu,\"misses\":%llu,\"evictions\":%llu,"
        "\"usage\":%llu,\"capacity\":%llu,\"shards\":%llu}}",
        (unsigned long long)block->hits(),
        (unsigned long long)block->misses(),
        (unsigned long long)block->evictions(),
        (unsigned long long)block->usage(),
        (unsigned long long)block->capacity(),
        (unsigned long long)block->num_shards(),
        (unsigned long long)table->hits(),
        (unsigned long long)table->misses(),
        (unsigned long long)table->evictions(),
        (unsigned long long)table->usage(),
        (unsigned long long)table->capacity(),
        (unsigned long long)table->num_shards());
    *value = buf;
    return true;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Slice in = property;
  Slice prefix("pipelsm.");
  if (!in.starts_with(prefix)) return false;
  in.remove_prefix(prefix.size());

  if (in.starts_with("num-files-at-level")) {
    in.remove_prefix(std::strlen("num-files-at-level"));
    uint64_t level;
    bool ok = ConsumeDecimalNumber(&in, &level) && in.empty();
    if (!ok || level >= config::kNumLevels) {
      return false;
    }
    char buf[100];
    std::snprintf(buf, sizeof(buf), "%d",
                  versions_->NumLevelFiles(static_cast<int>(level)));
    *value = buf;
    return true;
  } else if (in == Slice("stats")) {
    *value = StatsReport();
    return true;
  } else if (in == Slice("advisor")) {
    // Advisor has its own lock; JSON per docs/OBSERVABILITY.md.
    *value = advisor_.ToJson();
    return true;
  } else if (in == Slice("scheduler")) {
    // Scheduler has its own lock; JSON per docs/TUNING.md.
    *value = scheduler_->ToJson();
    return true;
  } else if (in == Slice("sstables")) {
    *value = versions_->current()->DebugString();
    return true;
  } else if (in == Slice("metrics")) {
    // Registry has its own lock; counters are updated by executors
    // running outside mutex_, so the snapshot is taken lock-free here.
    *value = metrics_registry_.ToJson();
    return true;
  } else if (in == Slice("timeseries")) {
    // Ring has its own lock. Without a stats thread the ring would stay
    // empty forever, so take one on-demand sample first — a single-point
    // "history" still gives consumers current absolute values.
    if (timeseries_.size() == 0) {
      timeseries_.Sample(metrics_registry_, env_->NowMicros());
    }
    *value = timeseries_.ToJson();
    return true;
  } else if (in == Slice("compaction")) {
    // Compaction-policy snapshot (docs/COMPACTION.md): active picker,
    // per-level file/byte/run counts, and sub-compaction totals. Runs
    // are counted by interval-stacking depth on the current version.
    Version* v = versions_->current();
    std::string out = "{";
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "\"style\":\"%s\",\"picker\":\"%s\",\"tiered_run_count\":%d,"
        "\"max_subcompactions\":%d,\"last_predicted_write_amp\":%.3f,"
        "\"subcompacted_jobs\":%llu,\"subcompactions_run\":%llu,"
        "\"levels\":[",
        CompactionStyleName(options_.compaction_style),
        versions_->picker()->Name(), options_.tiered_run_count,
        options_.max_subcompactions, last_predicted_write_amp_,
        static_cast<unsigned long long>(subcompacted_jobs_),
        static_cast<unsigned long long>(subcompactions_run_));
    out += buf;
    for (int level = 0; level < config::kNumLevels; level++) {
      const std::vector<FileMetaData*>& files = v->files(level);
      std::snprintf(
          buf, sizeof(buf),
          "%s{\"level\":%d,\"files\":%d,\"bytes\":%lld,\"runs\":%d}",
          level > 0 ? "," : "", level, static_cast<int>(files.size()),
          static_cast<long long>(versions_->NumLevelBytes(level)),
          CountRuns(internal_comparator_, files));
      out += buf;
    }
    out += "]}";
    *value = out;
    return true;
  } else if (in == Slice("background-error")) {
    *value = bg_error_.ToString();  // "OK" when healthy
    return true;
  } else if (in == Slice("approximate-memory-usage")) {
    uint64_t total = mem_ != nullptr ? mem_->ApproximateMemoryUsage() : 0;
    if (imm_ != nullptr) total += imm_->ApproximateMemoryUsage();
    char buf[50];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(total));
    *value = buf;
    return true;
  }
  return false;
}

void DBImpl::GetApproximateSizes(const Range* range, int n,
                                 uint64_t* sizes) {
  Version* v;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    v = versions_->current();
    v->Ref();
  }

  for (int i = 0; i < n; i++) {
    // Convert user ranges into appropriate internal key ranges.
    InternalKey k1(range[i].start, kMaxSequenceNumber, kValueTypeForSeek);
    InternalKey k2(range[i].limit, kMaxSequenceNumber, kValueTypeForSeek);
    const uint64_t start = versions_->ApproximateOffsetOf(v, k1);
    const uint64_t limit = versions_->ApproximateOffsetOf(v, k2);
    sizes[i] = (limit >= start ? limit - start : 0);
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    v->Unref();
  }
}

void DBImpl::CompactRange(const Slice* begin, const Slice* end) {
  int max_level_with_files = 1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Version* base = versions_->current();
    for (int level = 1; level < config::kNumLevels; level++) {
      if (base->OverlapInLevel(level, begin, end)) {
        max_level_with_files = level;
      }
    }
  }
  // Force a rotation + flush of the current memtable, then compact every
  // level that holds data in the range.
  Write(WriteOptions(), nullptr);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    MaybeScheduleCompaction();
    while (imm_ != nullptr && bg_error_.ok()) {
      background_done_signal_.wait(lock);
    }
  }
  for (int level = 0; level < max_level_with_files; level++) {
    CompactRangeAtLevel(level, begin, end);
  }
}

void DBImpl::CompactRangeAtLevel(int level, const Slice* begin,
                                 const Slice* end) {
  assert(level >= 0);
  assert(level + 1 < config::kNumLevels);

  InternalKey begin_storage, end_storage;

  ManualCompaction manual;
  manual.level = level;
  manual.done = false;
  if (begin == nullptr) {
    manual.begin = nullptr;
  } else {
    begin_storage = InternalKey(*begin, kMaxSequenceNumber, kValueTypeForSeek);
    manual.begin = &begin_storage;
  }
  if (end == nullptr) {
    manual.end = nullptr;
  } else {
    end_storage = InternalKey(*end, 0, static_cast<ValueType>(0));
    manual.end = &end_storage;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  while (!manual.done && !shutting_down_.load(std::memory_order_acquire) &&
         bg_error_.ok()) {
    if (manual_compaction_ == nullptr) {  // Idle
      manual_compaction_ = &manual;
      background_work_pending_ = true;
      background_work_signal_.notify_one();
    }
    background_done_signal_.wait(lock);
    if (manual_compaction_ == &manual && !background_work_pending_ &&
        !background_work_active_ && manual.done) {
      break;
    }
  }
  if (manual_compaction_ == &manual) {
    // Cancel my manual compaction since we aborted early for some reason.
    manual_compaction_ = nullptr;
  }
}

Status DBImpl::Resume() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (bg_error_.ok()) return Status::OK();  // healthy: nothing to do
  if (shutting_down_.load(std::memory_order_acquire)) return bg_error_;

  // Only the head of the writer queue may touch log_/mem_, so recovery
  // must take that position like any write. A concurrent leader can fold
  // a null-batch follower into its group and mark it done — in that case
  // simply re-enqueue until we come up as the leader ourselves.
  Writer w(&mutex_);
  w.batch = nullptr;
  for (;;) {
    w.done = false;
    writers_.push_back(&w);
    while (!w.done && &w != writers_.front()) {
      w.cv.wait(lock);
    }
    if (!w.done) break;  // we are the leader
  }

  const Status old_error = bg_error_;
  obs::Log(info_log_, "EVENT resume_begin error=%s",
           old_error.ToString().c_str());
  bg_error_ = Status::OK();
  bg_retry_attempts_ = 0;  // fresh retry budget for the recovery flushes
  bg_retry_pending_ = false;

  // 1. Drain a stuck immutable memtable, if any.
  MaybeScheduleCompaction();
  while (imm_ != nullptr && bg_error_.ok() &&
         !shutting_down_.load(std::memory_order_acquire)) {
    background_done_signal_.wait(lock);
  }

  // 2. Roll the WAL. The old log may carry a torn tail (a failed
  // AddRecord/Sync leaves it indeterminate, and a torn record can make
  // the log reader drop later records in the same block), so no new
  // write may land in it.
  if (bg_error_.ok()) {
    const uint64_t new_log_number = versions_->NewFileNumber();
    std::unique_ptr<WritableFile> lfile;
    Status s =
        env_->NewWritableFile(LogFileName(dbname_, new_log_number), &lfile);
    if (!s.ok()) {
      versions_->ReuseFileNumber(new_log_number);
      RecordBackgroundError(s, "resume");
    } else {
      if (logfile_ != nullptr) {
        Status cs = logfile_->Close();
        if (!cs.ok()) {
          PIPELSM_LOG_WARN("closing old WAL #%llu failed: %s",
                           static_cast<unsigned long long>(logfile_number_),
                           cs.ToString().c_str());
        }
      }
      logfile_ = std::move(lfile);
      logfile_number_ = new_log_number;
      log_.reset(new log::Writer(logfile_.get()));

      // 3. Flush the live memtable (even when empty: the flush installs
      // the new log number in the manifest, obsoleting the suspect log)
      // so every surviving write is in a table and the durability chain
      // restarts clean in the fresh WAL.
      imm_ = mem_;
      has_imm_.store(true, std::memory_order_release);
      mem_ = new MemTable(internal_comparator_);
      mem_->Ref();
      MaybeScheduleCompaction();
      while (imm_ != nullptr && bg_error_.ok() &&
             !shutting_down_.load(std::memory_order_acquire)) {
        background_done_signal_.wait(lock);
      }
    }
  }

  // Release write-queue leadership.
  assert(writers_.front() == &w);
  writers_.pop_front();
  if (!writers_.empty()) {
    writers_.front()->cv.notify_one();
  }

  Status result = bg_error_;
  if (result.ok()) {
    obs::ErrorRecoveryInfo info;
    info.old_error = old_error;
    for (obs::EventListener* l : listeners_) {
      l->OnErrorRecovered(info);
    }
  }
  return result;
}

Status DBImpl::WaitForCompactions() {
  std::unique_lock<std::mutex> lock(mutex_);
  MaybeScheduleCompaction();
  while ((background_work_pending_ || background_work_active_ ||
          imm_ != nullptr || versions_->NeedsCompaction()) &&
         bg_error_.ok() && !shutting_down_.load(std::memory_order_acquire)) {
    MaybeScheduleCompaction();
    background_done_signal_.wait(lock);
  }
  // Final sweep now that the system is quiesced. The per-compaction GC
  // can transiently miss an obsolete file when a concurrent read still
  // pins the pre-compaction version; once the pin is dropped nothing
  // re-triggers collection until the next compaction, which may never
  // come. (No-op while a background error is sticky.)
  RemoveObsoleteFiles();
  Status result = bg_error_;
  lock.unlock();
  // Mirror sweep for retired value-log segments (outside mutex_ per the
  // vlog lock-order rule).
  SweepRetiredVlogSegments();
  return result;
}

CompactionMetrics DBImpl::GetCompactionMetrics() {
  std::lock_guard<std::mutex> lock(mutex_);
  return metrics_;
}

Status DB::Open(const Options& options, const std::string& dbname,
                DB** dbptr) {
  *dbptr = nullptr;

  DBImpl* impl = new DBImpl(options, dbname);
  std::unique_lock<std::mutex> lock(impl->mutex_);
  VersionEdit edit;
  // Recover handles create_if_missing, error_if_exists.
  bool save_manifest = false;
  Status s = impl->Recover(&edit, &save_manifest);
  if (s.ok() && impl->mem_ == nullptr) {
    // Create new log and a corresponding memtable.
    uint64_t new_log_number = impl->versions_->NewFileNumber();
    std::unique_ptr<WritableFile> lfile;
    s = impl->env_->NewWritableFile(LogFileName(dbname, new_log_number),
                                    &lfile);
    if (s.ok()) {
      edit.SetLogNumber(new_log_number);
      impl->logfile_ = std::move(lfile);
      impl->logfile_number_ = new_log_number;
      impl->log_.reset(new log::Writer(impl->logfile_.get()));
      impl->mem_ = new MemTable(impl->internal_comparator_);
      impl->mem_->Ref();
    }
  }
  if (s.ok() && save_manifest) {
    edit.SetLogNumber(impl->logfile_number_);
    s = impl->versions_->LogAndApply(&edit, &impl->mutex_);
  } else if (s.ok()) {
    // Even when nothing was recovered, persist the new log number so a
    // reopen does not try to read a missing log.
    edit.SetLogNumber(impl->logfile_number_);
    s = impl->versions_->LogAndApply(&edit, &impl->mutex_);
  }
  if (s.ok()) {
    impl->RemoveObsoleteFiles();
    impl->MaybeScheduleCompaction();
  }
  lock.unlock();
  if (s.ok()) {
    assert(impl->mem_ != nullptr);
    if (impl->vlog_ != nullptr) {
      // The GC thread starts only after recovery has fully succeeded, so
      // it never races the bring-up sequence above.
      impl->vlog_gc_thread_ = std::thread([impl] { impl->VlogGcThreadMain(); });
    }
    *dbptr = impl;
  } else {
    delete impl;
  }
  return s;
}

Status DestroyDB(const std::string& dbname, const Options& options) {
  Env* env = options.env != nullptr ? options.env : Env::Posix();
  std::vector<std::string> filenames;
  Status result = env->GetChildren(dbname, &filenames);
  if (!result.ok()) {
    // Ignore error in case directory does not exist.
    return Status::OK();
  }

  uint64_t number;
  FileType type;
  for (const std::string& filename : filenames) {
    if (ParseFileName(filename, &number, &type)) {
      Status del = env->RemoveFile(dbname + "/" + filename);
      if (result.ok() && !del.ok()) {
        result = del;
      }
    }
  }
  // Info logs don't parse as numbered DB files; remove them explicitly
  // (errors ignored — they may simply not exist).
  env->RemoveFile(InfoLogFileName(dbname));
  env->RemoveFile(OldInfoLogFileName(dbname));
  env->RemoveDir(dbname);  // Ignore error in case dir contains other files
  return result;
}

}  // namespace pipelsm
