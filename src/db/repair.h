// RepairDB: best-effort reconstruction of a database whose metadata
// (CURRENT / MANIFEST) is lost or corrupt.
//
// Every WAL found is converted into a table; every readable table is
// scanned for its key range and maximum sequence number; a fresh MANIFEST
// registers them all at level 0 (overlap is legal there — the next
// compactions re-sort the tree). Unreadable tables are dropped with a
// warning. Some data may be lost (that is the nature of repair), but
// everything readable is preserved and the DB opens again.
#pragma once

#include <string>

#include "src/db/options.h"
#include "src/util/status.h"

namespace pipelsm {

Status RepairDB(const std::string& dbname, const Options& options);

}  // namespace pipelsm
