#include "src/db/builder.h"

#include <thread>

#include "src/compaction/raw_table_writer.h"
#include "src/db/dbformat.h"
#include "src/db/filename.h"
#include "src/db/table_cache.h"
#include "src/env/env.h"
#include "src/table/block_builder.h"
#include "src/table/filter_policy.h"
#include "src/table/table_builder.h"
#include "src/util/bounded_queue.h"
#include "src/util/crc32c.h"
#include "src/util/stopwatch.h"
#include "src/version/version_edit.h"

namespace pipelsm {

namespace {

// Fires OnFlushBegin (when info != nullptr) and, through Finish(), the
// matching OnFlushCompleted on whatever path the build exits.
class FlushEvents {
 public:
  FlushEvents(const obs::EventListeners* listeners, obs::FlushJobInfo* info,
              const FileMetaData* meta, bool pipelined)
      : listeners_(listeners), info_(info), meta_(meta) {
    if (info_ == nullptr) return;
    info_->file_number = meta->number;
    info_->pipelined = pipelined;
    if (listeners_ != nullptr) {
      for (obs::EventListener* l : *listeners_) l->OnFlushBegin(*info_);
    }
  }

  Status Finish(const Status& s, uint64_t entries) {
    if (info_ != nullptr) {
      info_->output_bytes = meta_->file_size;
      info_->entries = entries;
      info_->micros = wall_.ElapsedNanos() / 1000;
      info_->status = s;
      if (listeners_ != nullptr) {
        for (obs::EventListener* l : *listeners_) l->OnFlushCompleted(*info_);
      }
    }
    return s;
  }

 private:
  const obs::EventListeners* const listeners_;
  obs::FlushJobInfo* const info_;
  const FileMetaData* const meta_;
  Stopwatch wall_;
};

}  // namespace

Status BuildTable(const std::string& dbname, Env* env,
                  const TableOptions& table_options, TableCache* table_cache,
                  Iterator* iter, FileMetaData* meta,
                  const obs::EventListeners* listeners,
                  obs::FlushJobInfo* info) {
  Status s;
  meta->file_size = 0;
  iter->SeekToFirst();
  FlushEvents events(listeners, info, meta, /*pipelined=*/false);
  uint64_t entries = 0;

  std::string fname = TableFileName(dbname, meta->number);
  if (iter->Valid()) {
    std::unique_ptr<WritableFile> file;
    s = env->NewWritableFile(fname, &file);
    if (!s.ok()) {
      return events.Finish(s, entries);
    }

    TableBuilder builder(table_options, file.get());
    meta->smallest.DecodeFrom(iter->key());
    Slice key;
    for (; iter->Valid(); iter->Next()) {
      key = iter->key();
      builder.Add(key, iter->value());
      entries++;
    }
    if (!key.empty()) {
      meta->largest.DecodeFrom(key);
    }

    // Finish and check for builder errors. A failed Finish() has already
    // closed the builder, so Abandon() must not be called on top of it.
    s = builder.Finish();
    if (s.ok()) {
      meta->file_size = builder.FileSize();
      assert(meta->file_size > 0);
    }

    // Finish and check for file errors.
    if (s.ok()) {
      s = file->Sync();
    }
    if (s.ok()) {
      s = file->Close();
    }

    if (s.ok()) {
      // Verify that the table is usable.
      std::shared_ptr<Table> table;
      s = table_cache->GetTable(meta->number, meta->file_size, &table);
    }
  }

  // Check for input iterator errors.
  if (!iter->status().ok()) {
    s = iter->status();
  }

  if (s.ok() && meta->file_size > 0) {
    // Keep it.
  } else {
    env->RemoveFile(fname);
  }
  return events.Finish(s, entries);
}


Status BuildTablePipelined(const std::string& dbname, Env* env,
                           const TableOptions& table_options,
                           TableCache* table_cache, Iterator* iter,
                           FileMetaData* meta, size_t queue_depth,
                           const obs::EventListeners* listeners,
                           obs::FlushJobInfo* info) {
  meta->file_size = 0;
  iter->SeekToFirst();
  FlushEvents events(listeners, info, meta, /*pipelined=*/true);
  uint64_t entries = 0;
  const std::string fname = TableFileName(dbname, meta->number);
  if (!iter->Valid()) {
    return events.Finish(iter->status(), entries);
  }

  std::unique_ptr<WritableFile> file;
  Status s = env->NewWritableFile(fname, &file);
  if (!s.ok()) return events.Finish(s, entries);

  // The write stage reuses the compaction machinery: a RawTableWriter
  // consuming fully encoded blocks. Derive its job knobs from the table
  // options.
  CompactionJobOptions job;
  job.block_size = table_options.block_size;
  job.block_restart_interval = table_options.block_restart_interval;
  job.compression = table_options.compression;
  job.filter_policy = table_options.filter_policy;
  job.filter_partition_bytes = table_options.filter_partition_bytes;

  // Blocks travel in batches: a flush block is a single ~4 KB data block,
  // so per-item queue handoffs would cost more than they overlap.
  constexpr size_t kBlocksPerBatch = 16;
  BoundedQueue<std::vector<EncodedBlock>> queue(
      std::max<size_t>(1, queue_depth / kBlocksPerBatch + 1));
  RawTableWriter writer(job, file.get());

  // ---- stage write: consume encoded-block batches on a thread. ----
  Status write_status;
  std::thread writer_thread([&] {
    for (;;) {
      auto batch = queue.Pop();
      if (!batch.has_value()) break;
      for (EncodedBlock& block : *batch) {
        Status ws = writer.AddBlock(block);
        if (!ws.ok()) {
          write_status = ws;
          queue.Close();
          return;
        }
      }
    }
  });

  // ---- stage compute: build + compress + checksum on this thread. ----
  BlockBuilder builder(table_options.block_restart_interval);
  std::vector<std::string> block_keys;
  std::vector<EncodedBlock> batch;
  EncodedBlock current;
  meta->smallest.DecodeFrom(iter->key());
  std::string last_key;

  auto flush_block = [&]() -> bool {
    if (builder.empty()) return true;
    EncodedBlock eb;
    Slice raw = builder.Finish();
    eb.first_key = current.first_key;
    eb.last_key = last_key;
    eb.entries = block_keys.empty() ? 0 : block_keys.size();
    if (table_options.filter_policy != nullptr && !block_keys.empty()) {
      std::vector<Slice> keys(block_keys.begin(), block_keys.end());
      table_options.filter_policy->CreateFilter(keys.data(), keys.size(),
                                                &eb.filter);
    }
    std::string compressed;
    const CompressionType type =
        CompressBlock(table_options.compression, raw, &compressed);
    eb.payload = std::move(compressed);
    char trailer[kBlockTrailerSize];
    trailer[0] = static_cast<char>(type);
    uint32_t crc = crc32c::Value(eb.payload.data(), eb.payload.size());
    crc = crc32c::Extend(crc, trailer, 1);
    EncodeFixed32(trailer + 1, crc32c::Mask(crc));
    eb.payload.append(trailer, kBlockTrailerSize);

    builder.Reset();
    block_keys.clear();
    current = EncodedBlock{};
    batch.push_back(std::move(eb));
    if (batch.size() >= kBlocksPerBatch) {
      std::vector<EncodedBlock> out;
      out.swap(batch);
      // Push fails only after the writer thread closed the queue on a
      // write error; `out` is handed back and dropped here, and the real
      // error surfaces through write_status below.
      return queue.Push(std::move(out));
    }
    return true;
  };

  for (; iter->Valid(); iter->Next()) {
    Slice key = iter->key();
    if (builder.empty()) {
      current.first_key.assign(key.data(), key.size());
    }
    builder.Add(key, iter->value());
    entries++;
    last_key.assign(key.data(), key.size());
    if (table_options.filter_policy != nullptr) {
      block_keys.emplace_back(key.data(), key.size());
    }
    if (builder.CurrentSizeEstimate() >= table_options.block_size) {
      if (!flush_block()) break;  // queue closed: writer failed
    }
  }
  flush_block();
  if (!batch.empty()) {
    // Same contract: a false return keeps `batch` alive; the tail blocks
    // are intentionally abandoned because the writer already failed.
    queue.Push(std::move(batch));
  }
  meta->largest.DecodeFrom(last_key);
  queue.Close();
  writer_thread.join();

  if (s.ok()) s = write_status;
  if (s.ok()) s = iter->status();
  if (s.ok()) s = writer.Finish();
  if (s.ok()) s = file->Sync();
  if (s.ok()) s = file->Close();
  if (s.ok()) {
    meta->file_size = writer.FileSize();
    std::shared_ptr<Table> table;
    s = table_cache->GetTable(meta->number, meta->file_size, &table);
  }

  if (!s.ok() || meta->file_size == 0) {
    env->RemoveFile(fname);
  }
  return events.Finish(s, entries);
}

}  // namespace pipelsm
