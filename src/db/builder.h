// BuildTable: memtable -> level-0 SSTable (minor compaction / dump).
#pragma once

#include <cstdint>
#include <string>

#include "src/db/options.h"
#include "src/obs/event_listener.h"
#include "src/util/status.h"

namespace pipelsm {

class Env;
class Iterator;
struct FileMetaData;
class TableCache;
class TableOptions;

// Builds a table file from *iter (which yields internal keys). On success
// (non-empty input) fills *meta and leaves the file in the table cache;
// on empty input or error the file is removed.
//
// When `info` is non-null, OnFlushBegin fires on `listeners` before the
// first block is built and OnFlushCompleted after the dump finished (or
// failed), with output size / entry count / wall micros / status filled
// in. The caller pre-fills info->job_id; the builder sets the rest.
Status BuildTable(const std::string& dbname, Env* env,
                  const TableOptions& table_options, TableCache* table_cache,
                  Iterator* iter, FileMetaData* meta,
                  const obs::EventListeners* listeners = nullptr,
                  obs::FlushJobInfo* info = nullptr);

// Pipelined variant (extension beyond the paper, which notes that only
// major compactions are pipelined "by now"): block building, compression
// and checksumming run on the calling thread while a writer thread
// streams finished blocks to the file — the same read/compute/write
// overlap idea applied to the memtable dump. Produces a table with the
// same contents (index separators are exact last keys, as in compaction
// outputs). Enabled via Options::pipelined_flush.
Status BuildTablePipelined(const std::string& dbname, Env* env,
                           const TableOptions& table_options,
                           TableCache* table_cache, Iterator* iter,
                           FileMetaData* meta, size_t queue_depth = 4,
                           const obs::EventListeners* listeners = nullptr,
                           obs::FlushJobInfo* info = nullptr);

}  // namespace pipelsm
