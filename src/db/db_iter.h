// DBIter: wraps an internal-key iterator (memtables + tables merged) into
// the user-facing view at a fixed sequence number — newest live version of
// each user key, tombstones hidden, value-log pointers resolved.
#pragma once

#include <cstdint>

#include "src/db/dbformat.h"
#include "src/table/iterator.h"

namespace pipelsm {

namespace vlog {
class VlogManager;
}

// Return a new iterator that converts internal keys (yielded by
// "*internal_iter", whose ownership is taken) that were live at the
// specified `sequence` number into appropriate user keys. When `vlog` is
// non-null, kTypeValuePointer entries are resolved through it at each
// yield point so value() always returns the user value; with a null
// `vlog` a pointer entry surfaces as a Corruption status.
Iterator* NewDBIterator(const Comparator* user_key_comparator,
                        Iterator* internal_iter, SequenceNumber sequence,
                        vlog::VlogManager* vlog = nullptr);

}  // namespace pipelsm
