// DBIter: wraps an internal-key iterator (memtables + tables merged) into
// the user-facing view at a fixed sequence number — newest live version of
// each user key, tombstones hidden.
#pragma once

#include <cstdint>

#include "src/db/dbformat.h"
#include "src/table/iterator.h"

namespace pipelsm {

// Return a new iterator that converts internal keys (yielded by
// "*internal_iter", whose ownership is taken) that were live at the
// specified `sequence` number into appropriate user keys.
Iterator* NewDBIterator(const Comparator* user_key_comparator,
                        Iterator* internal_iter, SequenceNumber sequence);

}  // namespace pipelsm
