// WriteBatch: an ordered group of updates applied atomically.
//
// Wire format (also the WAL record payload):
//   sequence: fixed64
//   count: fixed32
//   data: record[count]
// record :=
//   kTypeValue    varstring varstring |
//   kTypeDeletion varstring
#pragma once

#include <string>

#include "src/util/slice.h"
#include "src/util/status.h"

namespace pipelsm {

class MemTable;

class WriteBatch {
 public:
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void Put(const Slice& key, const Slice& value) = 0;
    virtual void Delete(const Slice& key) = 0;
  };

  WriteBatch();
  WriteBatch(const WriteBatch&) = default;
  WriteBatch& operator=(const WriteBatch&) = default;
  ~WriteBatch() = default;

  void Put(const Slice& key, const Slice& value);
  void Delete(const Slice& key);
  void Clear();

  // The size of the database changes caused by this batch.
  size_t ApproximateSize() const { return rep_.size(); }

  // Copies the operations in "source" to this batch.
  void Append(const WriteBatch& source);

  // Replays the operations into the handler, in insertion order.
  Status Iterate(Handler* handler) const;

 private:
  friend class WriteBatchInternal;

  std::string rep_;
};

// Internal plumbing shared by the DB write path and WAL recovery.
class WriteBatchInternal {
 public:
  static int Count(const WriteBatch* batch);
  static void SetCount(WriteBatch* batch, int n);
  static uint64_t Sequence(const WriteBatch* batch);
  static void SetSequence(WriteBatch* batch, uint64_t seq);
  static Slice Contents(const WriteBatch* batch) { return Slice(batch->rep_); }
  static size_t ByteSize(const WriteBatch* batch) { return batch->rep_.size(); }
  static void SetContents(WriteBatch* batch, const Slice& contents);
  static Status InsertInto(const WriteBatch* batch, MemTable* memtable);
  static void Append(WriteBatch* dst, const WriteBatch* src);
};

}  // namespace pipelsm
