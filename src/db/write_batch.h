// WriteBatch: an ordered group of updates applied atomically.
//
// Wire format (also the WAL record payload):
//   sequence: fixed64
//   count: fixed32
//   data: record[count]
// record :=
//   kTypeValue        varstring varstring |
//   kTypeValuePointer varstring varstring |
//   kTypeDeletion     varstring
//
// kTypeValuePointer records carry an encoded vlog::ValueLocation instead
// of the user value (key-value separation, docs/VALUE_LOG.md). They are
// produced internally by the DB write path and value-log GC — user
// batches only ever contain Put/Delete.
#pragma once

#include <string>

#include "src/util/slice.h"
#include "src/util/status.h"

namespace pipelsm {

class MemTable;

class WriteBatch {
 public:
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void Put(const Slice& key, const Slice& value) = 0;
    virtual void Delete(const Slice& key) = 0;
    // `location` is an encoded vlog::ValueLocation. Handlers that can
    // never see separated batches (user-batch-only paths) still must
    // route it explicitly — silently treating a pointer as a value
    // would hand raw location bytes to readers.
    virtual void PutPointer(const Slice& key, const Slice& location) = 0;
  };

  WriteBatch();
  WriteBatch(const WriteBatch&) = default;
  WriteBatch& operator=(const WriteBatch&) = default;
  ~WriteBatch() = default;

  void Put(const Slice& key, const Slice& value);
  void Delete(const Slice& key);
  // Internal (write path / vlog GC): record a key whose value lives in
  // the value log. `location` is an encoded vlog::ValueLocation.
  void PutPointer(const Slice& key, const Slice& location);
  void Clear();

  // The size of the database changes caused by this batch.
  size_t ApproximateSize() const { return rep_.size(); }

  // Copies the operations in "source" to this batch.
  void Append(const WriteBatch& source);

  // Replays the operations into the handler, in insertion order.
  Status Iterate(Handler* handler) const;

 private:
  friend class WriteBatchInternal;

  std::string rep_;
};

// Internal plumbing shared by the DB write path and WAL recovery.
class WriteBatchInternal {
 public:
  static int Count(const WriteBatch* batch);
  static void SetCount(WriteBatch* batch, int n);
  static uint64_t Sequence(const WriteBatch* batch);
  static void SetSequence(WriteBatch* batch, uint64_t seq);
  static Slice Contents(const WriteBatch* batch) { return Slice(batch->rep_); }
  static size_t ByteSize(const WriteBatch* batch) { return batch->rep_.size(); }
  static void SetContents(WriteBatch* batch, const Slice& contents);
  static Status InsertInto(const WriteBatch* batch, MemTable* memtable);
  static void Append(WriteBatch* dst, const WriteBatch* src);
};

}  // namespace pipelsm
