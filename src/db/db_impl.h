// DBImpl: the LSM engine. Writes land in the WAL + memtable; full
// memtables rotate to an immutable memtable that a background thread
// dumps to level 0; when a level exceeds its threshold the background
// thread runs a major compaction through the configured
// CompactionExecutor (SCP / PCP / S-PPCP / C-PPCP).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/db/db.h"
#include "src/db/dbformat.h"
#include "src/db/table_cache.h"
#include "src/db/write_batch.h"
#include "src/memtable/memtable.h"
#include "src/obs/advisor.h"
#include "src/obs/event_listener.h"
#include "src/obs/logger.h"
#include "src/obs/metrics.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace.h"
#include "src/read/cache.h"
#include "src/version/version_set.h"
#include "src/vlog/vlog.h"
#include "src/wal/log_writer.h"

namespace pipelsm {

class CompactionExecutor;
class CompactionScheduler;

class SnapshotImpl : public Snapshot {
 public:
  explicit SnapshotImpl(SequenceNumber sequence_number)
      : sequence_number_(sequence_number) {}

  SequenceNumber sequence_number() const { return sequence_number_; }

 private:
  friend class DBImpl;
  const SequenceNumber sequence_number_;
  std::list<SnapshotImpl*>::iterator pos_;
};

class DBImpl final : public DB {
 public:
  DBImpl(const Options& raw_options, const std::string& dbname);
  ~DBImpl() override;

  DBImpl(const DBImpl&) = delete;
  DBImpl& operator=(const DBImpl&) = delete;

  // DB interface.
  Status Put(const WriteOptions&, const Slice& key,
             const Slice& value) override;
  Status Delete(const WriteOptions&, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* updates) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  Iterator* NewIterator(const ReadOptions&) override;
  const Snapshot* GetSnapshot() override;
  void ReleaseSnapshot(const Snapshot* snapshot) override;
  bool GetProperty(const Slice& property, std::string* value) override;
  void GetApproximateSizes(const Range* range, int n,
                           uint64_t* sizes) override;
  void CompactRange(const Slice* begin, const Slice* end) override;
  Status WaitForCompactions() override;
  Status CompactValueLog() override;
  Status Resume() override;
  CompactionMetrics GetCompactionMetrics() override;

  obs::MetricsRegistry* MetricsHandle() override { return &metrics_registry_; }
  obs::Logger* InfoLogHandle() override { return info_log_; }

 private:
  friend class DB;
  class CompactionSinkImpl;
  class EventLogger;

  Status NewDB();

  // Recover the descriptor from persistent storage. May do a significant
  // amount of work to recover recently logged updates.
  Status Recover(VersionEdit* edit, bool* save_manifest);
  Status RecoverLogFile(uint64_t log_number, bool last_log,
                        bool* save_manifest, VersionEdit* edit,
                        SequenceNumber* max_sequence);

  Status WriteLevel0Table(MemTable* mem, VersionEdit* edit, Version* base)
      /* REQUIRES: holding mutex_ */;

  Status MakeRoomForWrite(std::unique_lock<std::mutex>& lock, bool force);

  void RemoveObsoleteFiles() /* REQUIRES: holding mutex_ */;

  void MaybeScheduleCompaction() /* REQUIRES: holding mutex_ */;
  void BackgroundThreadMain();
  Status BackgroundCompaction(std::unique_lock<std::mutex>& lock);
  Status CompactMemTable(std::unique_lock<std::mutex>& lock);
  Status DoCompactionWork(std::unique_lock<std::mutex>& lock, Compaction* c);

  // Flush a pending immutable memtable from the compaction write stage
  // (keeps the write path unblocked during long major compactions).
  void MaybeFlushImmFromSink();

  // ---- key-value separation (docs/VALUE_LOG.md) ----
  // One live value GC decided to rewrite: its key and its frame's old
  // and new locations. The commit step re-checks old_loc is still the
  // key's current pointer under writer-queue leadership before
  // installing new_loc.
  struct GcRewrite {
    std::string key;
    vlog::ValueLocation old_loc;
    vlog::ValueLocation new_loc;
  };

  // Rewrite the group's large-value Puts as value-log appends +
  // PutPointer records into *out. Appends one entry per separated value
  // to *touched (for VlogManager::ReleaseAppends after the commit).
  // *any is false when nothing crossed the threshold (use the input
  // batch unchanged).
  Status SeparateLargeValues(WriteBatch* input, WriteBatch* out,
                             std::vector<uint64_t>* touched, bool* any);

  // Read key's current entry without resolving pointers. Returns true on
  // a pointer hit and stores its decoded location.
  // REQUIRES: mem/imm/current are reffed by the caller; mutex_ NOT held.
  bool GetPointerUnlocked(const Slice& key, SequenceNumber sequence,
                          MemTable* mem, MemTable* imm, Version* current,
                          vlog::ValueLocation* loc);

  // Dedicated GC thread: picks over-threshold segments, scans them,
  // rewrites live values, retires the segment. Separate from the
  // background flush/compaction thread so a GC commit waiting in the
  // writer queue can never deadlock against a stalled leader that needs
  // the background thread to make progress.
  void VlogGcThreadMain();
  Status VlogGcPass(uint64_t segment);
  Status CommitGcRewrites(const std::vector<GcRewrite>& rewrites,
                          SequenceNumber* commit_seq,
                          std::vector<vlog::ValueLocation>* dead_new);
  SequenceNumber MinPinnedSequenceLocked() const
      /* REQUIRES: holding mutex_ */;
  // Compute the min pin under mutex_ and sweep retired segments without
  // holding it (never call into vlog_ with mutex_ held).
  void SweepRetiredVlogSegments();

  // Group commit: one queued writer becomes the leader, folds the batches
  // of followers behind it into one WAL record + memtable apply, and
  // wakes them with the shared status.
  struct Writer {
    explicit Writer(std::mutex* mu) { (void)mu; }
    Status status;
    WriteBatch* batch = nullptr;
    bool sync = false;
    bool done = false;
    std::condition_variable cv;
  };

  // REQUIRES: mutex held, writers_ non-empty, first writer not done.
  WriteBatch* BuildBatchGroup(Writer** last_writer);

  Iterator* NewInternalIterator(const ReadOptions&,
                                SequenceNumber* latest_snapshot);

  // Sticky error: freezes background work and writes until Resume().
  void RecordBackgroundError(const Status& s, const char* source = "db");

  // Classifies a background failure: transient I/O errors consume one of
  // Options::max_background_retries (the background loop re-runs the work
  // after exponential backoff); exhausted retries and non-retryable
  // errors (corruption) become the sticky bg_error_.
  void HandleBackgroundFailure(const Status& s, const char* source)
      /* REQUIRES: holding mutex_ */;

  uint64_t BackoffMicros(int attempt) const;

  // Fires OnWriteStallChange on every listener iff the condition changed.
  void SetStallCondition(obs::WriteStallCondition condition)
      /* REQUIRES: holding mutex_ */;

  // The GetProperty("pipelsm.stats") payload: counters, level summary,
  // accumulated step profile, the metrics registry snapshot (which holds
  // the foreground latency histograms) and the advisor verdict.
  std::string StatsReport() /* REQUIRES: holding mutex_ */;

  // Re-exports the chrome trace to Options::trace_path (no-op without a
  // collector); failures are logged, never surfaced. Called on close, on
  // every stats-dump tick and on the first background error, so a crashed
  // or wedged run still leaves a loadable trace.
  void FlushTraceBestEffort();

  void StatsThreadMain();

  // Compact the in-memory range [begin,end] at the given level (used by
  // CompactRange).
  void CompactRangeAtLevel(int level, const Slice* begin, const Slice* end);

  struct ManualCompaction {
    int level;
    bool done;
    const InternalKey* begin;  // null means beginning of key range
    const InternalKey* end;    // null means end of key range
    InternalKey tmp_storage;   // Used to keep track of compaction progress
  };

  // Constant after construction.
  Env* const env_;
  const InternalKeyComparator internal_comparator_;
  // Bloom policy owned by the DB when Options::bloom_bits_per_key > 0
  // and no filter_policy was supplied. Declared before
  // internal_filter_policy_, which wraps it.
  std::unique_ptr<const FilterPolicy> owned_filter_policy_;
  const InternalFilterPolicy internal_filter_policy_;
  const Options options_;
  const std::string dbname_;

  std::unique_ptr<read::Cache> owned_block_cache_;
  TableOptions table_options_;        // derived, for readers/flushes
  std::unique_ptr<TableCache> table_cache_;

  // One executor per procedure, constructed up front (they are
  // stateless); the scheduler picks which one runs each admitted job.
  // With adaptive_compaction off the choice is Options::compaction_mode
  // on every admission.
  std::unique_ptr<CompactionExecutor> executors_[4];
  std::unique_ptr<CompactionScheduler> scheduler_;

  std::mutex mutex_;
  std::condition_variable background_work_signal_;
  std::condition_variable background_done_signal_;
  std::atomic<bool> shutting_down_{false};

  MemTable* mem_ = nullptr;
  MemTable* imm_ = nullptr;              // Memtable being flushed
  std::atomic<bool> has_imm_{false};     // imm_ != nullptr, lock-free probe
  // True while one thread runs CompactMemTable. Concurrent sub-compaction
  // sink threads may all observe has_imm_; CompactMemTable drops mutex_
  // inside LogAndApply, so the imm_ null check alone cannot arbitrate
  // (docs/COMPACTION.md). Guarded by mutex_.
  bool imm_flush_in_progress_ = false;
  std::unique_ptr<WritableFile> logfile_;
  uint64_t logfile_number_ = 0;
  std::unique_ptr<log::Writer> log_;

  std::list<SnapshotImpl*> snapshots_;

  // Queue of writers waiting to commit (front = leader).
  std::deque<Writer*> writers_;
  WriteBatch tmp_batch_;  // scratch for group commit
  WriteBatch vlog_batch_;  // leader's scratch for separated groups

  // Key-value separation (docs/VALUE_LOG.md). Created during Recover()
  // when Options::value_separation_threshold > 0 or the directory holds
  // .vlog segments from a previous run (so pointers stay resolvable even
  // if separation was since turned off); immutable afterwards. Its own
  // mutex orders BELOW mutex_: never call into vlog_ while holding
  // mutex_ (the file-number allocator re-locks mutex_).
  std::unique_ptr<vlog::VlogManager> vlog_;

  // Sequence numbers pinned by live internal iterators and in-flight
  // Gets. Retired value-log segments are physically deleted only once
  // the minimum pin passes their retire sequence, so a read that saw an
  // old pointer can still resolve it. Guarded by mutex_.
  std::multiset<SequenceNumber> vlog_pins_;

  std::thread vlog_gc_thread_;
  std::condition_variable vlog_gc_signal_;

  // Files being generated by in-flight compactions (protected from GC).
  std::set<uint64_t> pending_outputs_;

  std::thread background_thread_;
  bool background_work_pending_ = false;
  bool background_work_active_ = false;
  ManualCompaction* manual_compaction_ = nullptr;

  std::unique_ptr<VersionSet> versions_;

  Status bg_error_;
  int bg_retry_attempts_ = 0;     // transient failures since last success
  bool bg_retry_pending_ = false; // background loop owes a backoff+retry
  CompactionMetrics metrics_;

  // Compaction-policy stats behind GetProperty("pipelsm.compaction")
  // (docs/COMPACTION.md). All guarded by mutex_.
  uint64_t subcompacted_jobs_ = 0;   // jobs that ran as >1 sub-job
  uint64_t subcompactions_run_ = 0;  // total sub-jobs across them
  double last_predicted_write_amp_ = 1.0;  // last installed job's estimate

  // Observability (docs/OBSERVABILITY.md): instrument registry behind
  // GetProperty("pipelsm.metrics") — has its own synchronization, and the
  // executors update it outside mutex_. trace_ exists only when
  // Options::trace_path is set; the file is written on DB close.
  obs::MetricsRegistry metrics_registry_;
  std::unique_ptr<obs::TraceCollector> trace_;
  obs::Counter* slowdown_micros_counter_ = nullptr;
  obs::Counter* pause_micros_counter_ = nullptr;
  obs::Counter* flush_runs_counter_ = nullptr;
  obs::Counter* subcompaction_jobs_counter_ = nullptr;  // jobs that split
  obs::Counter* subcompaction_runs_counter_ = nullptr;  // sub-jobs run
  obs::HistogramMetric* get_micros_hist_ = nullptr;
  obs::HistogramMetric* write_micros_hist_ = nullptr;
  obs::Gauge* stall_state_gauge_ = nullptr;  // 0 normal / 1 delayed / 2 stopped

  // Metrics history behind GetProperty("pipelsm.timeseries"): one sample
  // per stats-dump tick (Options::timeseries_window deep). Has its own
  // mutex; sampled outside mutex_.
  obs::TimeSeriesRing timeseries_;

  // Info log: Options::info_log, or a LOG file the DB creates in its own
  // directory (previous run rotated to LOG.old). Null only if creation
  // failed — obs::Log() tolerates that.
  std::unique_ptr<obs::Logger> owned_info_log_;
  obs::Logger* info_log_ = nullptr;

  // Event stream: one internal listener (EVENT log lines + advisor feed)
  // followed by Options::listeners, dispatched in that order. Job ids for
  // flushes and compactions come from one monotone sequence.
  std::unique_ptr<EventLogger> event_logger_;
  obs::EventListeners listeners_;
  std::atomic<uint64_t> next_job_id_{1};

  // Online Eq. 1-7 bottleneck advisor, fed the StepProfile of every
  // successful compaction; behind GetProperty("pipelsm.advisor").
  obs::BottleneckAdvisor advisor_;

  obs::WriteStallCondition stall_condition_ =
      obs::WriteStallCondition::kNormal;  // guarded by mutex_

  // Periodic stats dumper (Options::stats_dump_period_sec); shares
  // mutex_, woken early at shutdown via stats_cv_.
  std::thread stats_thread_;
  std::condition_variable stats_cv_;
};

}  // namespace pipelsm
