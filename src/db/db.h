// DB: the public key-value store interface (the paper's LevelDB-class
// substrate with pluggable compaction procedures).
//
// Usage:
//   pipelsm::Options options;
//   options.create_if_missing = true;
//   options.compaction_mode = pipelsm::CompactionMode::kPCP;
//   pipelsm::DB* db = nullptr;
//   auto s = pipelsm::DB::Open(options, "/tmp/testdb", &db);
//   ...
//   db->Put(pipelsm::WriteOptions(), "key", "value");
//   delete db;
#pragma once

#include <cstdint>
#include <string>

#include "src/db/options.h"
#include "src/table/iterator.h"
#include "src/util/slice.h"
#include "src/util/status.h"
#include "src/util/stopwatch.h"

namespace pipelsm {

class WriteBatch;

namespace obs {
class Logger;
class MetricsRegistry;
}  // namespace obs

// Abstract handle to particular state of a DB. A Snapshot is an immutable
// object and can therefore be safely accessed from multiple threads.
class Snapshot {
 protected:
  virtual ~Snapshot();
};

// A range of keys.
struct Range {
  Range() {}
  Range(const Slice& s, const Slice& l) : start(s), limit(l) {}

  Slice start;  // Included in the range
  Slice limit;  // Not included in the range
};

// Aggregate compaction metrics surfaced by DB::GetCompactionProfile.
struct CompactionMetrics {
  StepProfile profile;           // summed over all major compactions
  uint64_t compactions = 0;      // number of major compactions run
  uint64_t memtable_flushes = 0;
  uint64_t bytes_read = 0;       // compaction input bytes (compressed)
  uint64_t bytes_written = 0;    // compaction + flush output bytes
  // Output bytes of major compactions only (no memtable flushes):
  // divide by user bytes for the classic write-amplification figure
  // (bench_ablation's WA column; docs/COMPACTION.md).
  uint64_t compaction_bytes_written = 0;
  uint64_t stall_micros = 0;     // writer time lost to stalls/pauses
};

class DB {
 public:
  // Open the database with the specified "name". Stores a heap-allocated
  // database in *dbptr on success.
  static Status Open(const Options& options, const std::string& name,
                     DB** dbptr);

  DB() = default;
  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;
  virtual ~DB();

  virtual Status Put(const WriteOptions& options, const Slice& key,
                     const Slice& value) = 0;
  virtual Status Delete(const WriteOptions& options, const Slice& key) = 0;
  virtual Status Write(const WriteOptions& options, WriteBatch* updates) = 0;

  // If the database contains an entry for "key" store the corresponding
  // value in *value and return OK. Returns NotFound if absent.
  virtual Status Get(const ReadOptions& options, const Slice& key,
                     std::string* value) = 0;

  // Heap-allocated iterator over the DB contents. Caller deletes it
  // before the DB.
  virtual Iterator* NewIterator(const ReadOptions& options) = 0;

  virtual const Snapshot* GetSnapshot() = 0;
  virtual void ReleaseSnapshot(const Snapshot* snapshot) = 0;

  // DB implementations can export properties about their state via this
  // method. Recognized (reference: docs/OBSERVABILITY.md):
  //   "pipelsm.num-files-at-level<N>"    file count at level N
  //   "pipelsm.stats"                    full stats report: compaction
  //                                      summary + metrics registry +
  //                                      advisor (also what the periodic
  //                                      stats dump logs)
  //   "pipelsm.sstables"                 per-level table listing
  //   "pipelsm.approximate-memory-usage" memtable bytes
  //   "pipelsm.metrics"                  JSON snapshot of the metrics
  //                                      registry (queue stalls, step
  //                                      times, sub-task histograms,
  //                                      Get/Write latency)
  //   "pipelsm.advisor"                  JSON verdict of the online
  //                                      Eq. 1-7 bottleneck advisor
  //   "pipelsm.background-error"         "OK", or the sticky background
  //                                      error freezing writes (clear it
  //                                      with Resume())
  //   "pipelsm.vlog"                     JSON state of the value log
  //                                      (segments, dead bytes, GC
  //                                      counters); only when key-value
  //                                      separation is active
  virtual bool GetProperty(const Slice& property, std::string* value) = 0;

  // For each i in [0,n-1], store in "sizes[i]" the approximate file
  // system space used by keys in "[range[i].start .. range[i].limit)".
  // The results may not include recently-written (unflushed) data.
  virtual void GetApproximateSizes(const Range* range, int n,
                                   uint64_t* sizes) = 0;

  // Compact the underlying storage for the key range [*begin,*end]
  // (nullptr = unbounded). Blocks until done.
  virtual void CompactRange(const Slice* begin, const Slice* end) = 0;

  // Block until every queued background compaction has finished.
  virtual Status WaitForCompactions() = 0;

  // Key-value separation (docs/VALUE_LOG.md): force a full value-log GC
  // sweep — seal the active segment, then garbage-collect every sealed
  // segment regardless of its dead ratio (live values are rewritten,
  // dead segments deleted). Blocks until the sweep finishes. A no-op
  // when separation is off and the DB holds no value-log segments.
  virtual Status CompactValueLog() { return Status::OK(); }

  // Recover from the sticky background-error state without reopening the
  // DB (docs/FAULT_INJECTION.md). After transient-error retries are
  // exhausted — or after a WAL sync failure — the DB freezes writes and
  // serves reads only; once the underlying cause is fixed, Resume()
  // clears the error, drains any stuck immutable memtable, rolls the WAL
  // (the old log may carry a torn tail) and flushes the live memtable so
  // the durability chain is clean again. Returns OK when the DB is
  // writable; the error if recovery failed. A no-op when healthy.
  virtual Status Resume() = 0;

  // Aggregate compaction step timings + counters since Open.
  virtual CompactionMetrics GetCompactionMetrics() = 0;

  // The DB's metrics registry, so embedding layers (the network server)
  // can publish their instruments through the same
  // GetProperty("pipelsm.metrics") snapshot. nullptr if unsupported.
  virtual obs::MetricsRegistry* MetricsHandle() { return nullptr; }

  // The DB's info log, so embedding layers can interleave their EVENT
  // lines with the DB's. nullptr if the DB has no log.
  virtual obs::Logger* InfoLogHandle() { return nullptr; }
};

// Destroy the contents of the specified database. Be very careful.
Status DestroyDB(const std::string& name, const Options& options);

}  // namespace pipelsm
