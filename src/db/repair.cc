#include "src/db/repair.h"

#include <memory>
#include <vector>

#include "src/db/builder.h"
#include "src/db/dbformat.h"
#include "src/db/filename.h"
#include "src/db/table_cache.h"
#include "src/db/write_batch.h"
#include "src/memtable/memtable.h"
#include "src/table/table.h"
#include "src/util/logging.h"
#include "src/version/version_edit.h"
#include "src/wal/log_reader.h"
#include "src/wal/log_writer.h"

namespace pipelsm {

namespace {

class Repairer {
 public:
  Repairer(const std::string& dbname, const Options& options)
      : dbname_(dbname),
        env_(options.env != nullptr ? options.env : Env::Posix()),
        icmp_(options.comparator != nullptr ? options.comparator
                                            : BytewiseComparator()),
        options_(options),
        next_file_number_(1) {
    table_options_.comparator = &icmp_;
    table_options_.block_size = options.block_size;
    table_options_.compression = options.compression;
    table_cache_.reset(new TableCache(dbname_, table_options_, env_, 100));
  }

  Status Run() {
    Status status = FindFiles();
    if (status.ok()) {
      ConvertLogFilesToTables();
      ExtractMetaData();
      status = WriteDescriptor();
    }
    if (status.ok()) {
      uint64_t bytes = 0;
      for (const TableInfo& t : tables_) {
        bytes += t.meta.file_size;
      }
      PIPELSM_LOG_INFO(
          "repair: recovered %d tables (%.1f MB), max sequence %llu",
          static_cast<int>(tables_.size()), bytes / 1048576.0,
          static_cast<unsigned long long>(max_sequence_));
    }
    return status;
  }

 private:
  struct TableInfo {
    FileMetaData meta;
    SequenceNumber max_sequence = 0;
  };

  Status FindFiles() {
    std::vector<std::string> filenames;
    Status status = env_->GetChildren(dbname_, &filenames);
    if (!status.ok()) return status;
    if (filenames.empty()) {
      return Status::IOError(dbname_, "repair found no files");
    }

    uint64_t number;
    FileType type;
    for (const std::string& filename : filenames) {
      if (ParseFileName(filename, &number, &type)) {
        if (type == kDescriptorFile) {
          manifests_.push_back(filename);
        } else {
          if (number + 1 > next_file_number_) {
            next_file_number_ = number + 1;
          }
          if (type == kLogFile) {
            logs_.push_back(number);
          } else if (type == kTableFile) {
            table_numbers_.push_back(number);
          }
          // kTempFile / kCurrentFile are regenerated or ignored.
          // kVlogFile segments stay in place untouched: bumping
          // next_file_number_ past them (above) prevents number reuse,
          // and VlogManager::Recover re-adopts them at the next open so
          // rebuilt pointer entries keep resolving.
        }
      }
    }
    return Status::OK();
  }

  void ConvertLogFilesToTables() {
    for (uint64_t log_number : logs_) {
      std::string logname = LogFileName(dbname_, log_number);
      Status status = ConvertLogToTable(log_number);
      if (!status.ok()) {
        PIPELSM_LOG_WARN("repair: log #%llu ignored: %s",
                         static_cast<unsigned long long>(log_number),
                         status.ToString().c_str());
      }
      // The log is consumed (or unreadable) either way.
      env_->RemoveFile(logname);
    }
  }

  Status ConvertLogToTable(uint64_t log_number) {
    struct LogReporter : public log::Reader::Reporter {
      uint64_t lognum;
      void Corruption(size_t bytes, const Status& s) override {
        PIPELSM_LOG_WARN("repair: log #%llu dropping %d bytes: %s",
                         static_cast<unsigned long long>(lognum),
                         static_cast<int>(bytes), s.ToString().c_str());
      }
    };

    // Open the log file.
    std::string logname = LogFileName(dbname_, log_number);
    std::unique_ptr<SequentialFile> lfile;
    Status status = env_->NewSequentialFile(logname, &lfile);
    if (!status.ok()) return status;

    LogReporter reporter;
    reporter.lognum = log_number;
    // Keep reading even if we hit corruptions: salvage what we can.
    log::Reader reader(lfile.get(), &reporter, false /*do not checksum*/, 0);

    // Replay into a memtable.
    std::string scratch;
    Slice record;
    WriteBatch batch;
    MemTable* mem = new MemTable(icmp_);
    mem->Ref();
    int counter = 0;
    while (reader.ReadRecord(&record, &scratch)) {
      if (record.size() < 12) {
        reporter.Corruption(record.size(),
                            Status::Corruption("log record too small"));
        continue;
      }
      WriteBatchInternal::SetContents(&batch, record);
      status = WriteBatchInternal::InsertInto(&batch, mem);
      if (status.ok()) {
        counter += WriteBatchInternal::Count(&batch);
        const SequenceNumber last =
            WriteBatchInternal::Sequence(&batch) +
            WriteBatchInternal::Count(&batch) - 1;
        if (last > max_sequence_) max_sequence_ = last;
      } else {
        PIPELSM_LOG_WARN("repair: log #%llu ignoring bad batch: %s",
                         static_cast<unsigned long long>(log_number),
                         status.ToString().c_str());
        status = Status::OK();  // Keep going with rest of file
      }
    }
    lfile.reset();

    // Dump the memtable to a new table file.
    FileMetaData meta;
    meta.number = next_file_number_++;
    std::unique_ptr<Iterator> iter(mem->NewIterator());
    status = BuildTable(dbname_, env_, table_options_, table_cache_.get(),
                        iter.get(), &meta);
    iter.reset();
    mem->Unref();
    if (status.ok() && meta.file_size > 0) {
      table_numbers_.push_back(meta.number);
      PIPELSM_LOG_INFO("repair: log #%llu -> table #%llu (%d entries)",
                       static_cast<unsigned long long>(log_number),
                       static_cast<unsigned long long>(meta.number), counter);
    }
    return status;
  }

  void ExtractMetaData() {
    for (uint64_t number : table_numbers_) {
      TableInfo t;
      t.meta.number = number;
      Status status = ScanTable(&t);
      if (status.ok()) {
        tables_.push_back(t);
      } else {
        // Unreadable: drop it (repair is best-effort).
        PIPELSM_LOG_WARN("repair: table #%llu dropped: %s",
                         static_cast<unsigned long long>(number),
                         status.ToString().c_str());
        env_->RemoveFile(TableFileName(dbname_, number));
        table_cache_->Evict(number);
      }
    }
  }

  Status ScanTable(TableInfo* t) {
    std::string fname = TableFileName(dbname_, t->meta.number);
    Status status = env_->GetFileSize(fname, &t->meta.file_size);
    if (!status.ok()) return status;

    // Walk every entry, validating as we go; the first corruption aborts
    // the table (a partial table would need block-level salvage, which
    // the trailer CRCs make detectable but which we do not attempt).
    TableReadOptions verify;
    verify.verify_checksums = true;
    std::shared_ptr<Table> table;
    status = table_cache_->GetTable(t->meta.number, t->meta.file_size, &table);
    if (!status.ok()) return status;

    std::unique_ptr<Iterator> iter(table->NewIterator(verify));
    int counter = 0;
    bool empty = true;
    ParsedInternalKey parsed;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      Slice key = iter->key();
      if (!ParseInternalKey(key, &parsed)) {
        return Status::Corruption("unparsable key in table");
      }
      counter++;
      if (empty) {
        empty = false;
        t->meta.smallest.DecodeFrom(key);
      }
      t->meta.largest.DecodeFrom(key);
      if (parsed.sequence > t->max_sequence) {
        t->max_sequence = parsed.sequence;
      }
    }
    if (!iter->status().ok()) {
      return iter->status();
    }
    if (empty) {
      return Status::Corruption("table has no entries");
    }
    if (t->max_sequence > max_sequence_) {
      max_sequence_ = t->max_sequence;
    }
    PIPELSM_LOG_INFO("repair: table #%llu: %d entries",
                     static_cast<unsigned long long>(t->meta.number),
                     counter);
    return Status::OK();
  }

  Status WriteDescriptor() {
    VersionEdit edit;
    edit.SetComparatorName(icmp_.user_comparator()->Name());
    edit.SetLogNumber(0);
    edit.SetNextFile(next_file_number_);
    edit.SetLastSequence(max_sequence_);
    for (const TableInfo& t : tables_) {
      // Everything goes to level 0 (overlap allowed; compaction re-sorts).
      edit.AddFile(0, t.meta.number, t.meta.file_size, t.meta.smallest,
                   t.meta.largest);
    }

    const uint64_t manifest_number = next_file_number_++;
    const std::string manifest = DescriptorFileName(dbname_, manifest_number);
    std::unique_ptr<WritableFile> file;
    Status status = env_->NewWritableFile(manifest, &file);
    if (!status.ok()) return status;
    {
      log::Writer log(file.get());
      std::string record;
      edit.EncodeTo(&record);
      status = log.AddRecord(record);
    }
    if (status.ok()) status = file->Sync();
    if (status.ok()) status = file->Close();
    if (!status.ok()) {
      env_->RemoveFile(manifest);
      return status;
    }

    // Discard the stale manifests and point CURRENT at the new one.
    for (const std::string& old : manifests_) {
      env_->RemoveFile(dbname_ + "/" + old);
    }
    return SetCurrentFile(env_, dbname_, manifest_number);
  }

  const std::string dbname_;
  Env* const env_;
  InternalKeyComparator icmp_;
  const Options options_;
  TableOptions table_options_;
  std::unique_ptr<TableCache> table_cache_;

  std::vector<std::string> manifests_;
  std::vector<uint64_t> table_numbers_;
  std::vector<uint64_t> logs_;
  std::vector<TableInfo> tables_;
  uint64_t next_file_number_;
  SequenceNumber max_sequence_ = 0;
};

}  // namespace

Status RepairDB(const std::string& dbname, const Options& options) {
  Repairer repairer(dbname, options);
  return repairer.Run();
}

}  // namespace pipelsm
