// TableCache: LRU cache of open SSTable readers, keyed by file number.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/db/options.h"
#include "src/table/iterator.h"
#include "src/table/table.h"
#include "src/table/table_options.h"
#include "src/util/status.h"

namespace pipelsm {

class Env;

class TableCache {
 public:
  TableCache(std::string dbname, const TableOptions& table_options, Env* env,
             int max_open_tables);

  TableCache(const TableCache&) = delete;
  TableCache& operator=(const TableCache&) = delete;

  // Returns an iterator over file `file_number` (of length `file_size`).
  // If tableptr is non-null, sets it to the underlying Table (owned by the
  // cache; valid while the iterator is live).
  Iterator* NewIterator(const TableReadOptions& read_options,
                        uint64_t file_number, uint64_t file_size,
                        Table** tableptr = nullptr);

  // Point lookup routed through Table::InternalGet.
  Status Get(const TableReadOptions& read_options, uint64_t file_number,
             uint64_t file_size, const Slice& k,
             const std::function<void(const Slice&, const Slice&)>& handle);

  // Pin the open table (compaction executors hold inputs open this way).
  Status GetTable(uint64_t file_number, uint64_t file_size,
                  std::shared_ptr<Table>* table);

  // Drop any cached reader for the (deleted) file.
  void Evict(uint64_t file_number);

 private:
  Status FindTable(uint64_t file_number, uint64_t file_size,
                   std::shared_ptr<Table>* table);

  const std::string dbname_;
  const TableOptions table_options_;
  Env* const env_;
  const size_t capacity_;

  std::mutex mu_;
  // LRU of open tables; front = MRU.
  struct Entry {
    uint64_t number;
    std::shared_ptr<Table> table;
  };
  std::list<Entry> lru_;
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
};

}  // namespace pipelsm
