// TableCache: cache of open SSTable readers, keyed by file number.
//
// Backed by the same lock-sharded LRU store as the block cache
// (src/read/cache.h), charged one unit per open table so capacity =
// max_open_files. Lookups on different files take different shard
// mutexes; a returned shared_ptr pins the reader across eviction.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/db/options.h"
#include "src/read/cache.h"
#include "src/table/iterator.h"
#include "src/table/table.h"
#include "src/table/table_options.h"
#include "src/util/status.h"

namespace pipelsm {

class Env;

class TableCache {
 public:
  TableCache(std::string dbname, const TableOptions& table_options, Env* env,
             int max_open_tables, size_t shards = 0);

  TableCache(const TableCache&) = delete;
  TableCache& operator=(const TableCache&) = delete;

  // Returns an iterator over file `file_number` (of length `file_size`).
  // If tableptr is non-null, sets it to the underlying Table (owned by the
  // cache; valid while the iterator is live).
  Iterator* NewIterator(const TableReadOptions& read_options,
                        uint64_t file_number, uint64_t file_size,
                        Table** tableptr = nullptr);

  // Point lookup routed through Table::InternalGet.
  Status Get(const TableReadOptions& read_options, uint64_t file_number,
             uint64_t file_size, const Slice& k,
             const std::function<void(const Slice&, const Slice&)>& handle);

  // Pin the open table (compaction executors hold inputs open this way).
  Status GetTable(uint64_t file_number, uint64_t file_size,
                  std::shared_ptr<Table>* table);

  // Drop any cached reader for the (deleted) file, and purge the file's
  // blocks + filter partitions from the shared block cache so dead
  // entries stop occupying capacity.
  void Evict(uint64_t file_number);

  // The backing store (for stats export).
  read::Cache* store() { return store_.get(); }

 private:
  Status FindTable(uint64_t file_number, uint64_t file_size,
                   std::shared_ptr<Table>* table);

  const std::string dbname_;
  const TableOptions table_options_;
  Env* const env_;
  std::unique_ptr<read::Cache> store_;
};

}  // namespace pipelsm
