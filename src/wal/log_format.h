// WAL record format (shared by writer and reader):
//
// The log is a sequence of 32 KiB blocks. Each record fragment has a
// 7-byte header: crc32c (4) | length (2) | type (1), where type marks the
// fragment's position in its logical record (FULL / FIRST / MIDDLE /
// LAST). A block's trailing <7 bytes are zero-padded.
#pragma once

namespace pipelsm::log {

enum RecordType {
  // Zero is reserved for preallocated files.
  kZeroType = 0,

  kFullType = 1,

  // For fragments:
  kFirstType = 2,
  kMiddleType = 3,
  kLastType = 4,
};
static const int kMaxRecordType = kLastType;

static const int kBlockSize = 32768;

// Header is checksum (4 bytes), length (2 bytes), type (1 byte).
static const int kHeaderSize = 4 + 2 + 1;

}  // namespace pipelsm::log
