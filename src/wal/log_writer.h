// WAL writer.
#pragma once

#include <cstdint>

#include "src/env/env.h"
#include "src/util/slice.h"
#include "src/util/status.h"
#include "src/wal/log_format.h"

namespace pipelsm::log {

class Writer {
 public:
  // Create a writer that will append data to "*dest". "*dest" must be
  // initially empty and must remain live while this Writer is in use.
  explicit Writer(WritableFile* dest);

  // Create a writer that will append data to "*dest", which has initial
  // length "dest_length" (reopen-for-append case).
  Writer(WritableFile* dest, uint64_t dest_length);

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  Status AddRecord(const Slice& slice);

 private:
  Status EmitPhysicalRecord(RecordType type, const char* ptr, size_t length);

  WritableFile* dest_;
  int block_offset_;  // Current offset in block

  // crc32c values for all supported record types, precomputed to reduce
  // the cost of computing the crc of the type byte.
  uint32_t type_crc_[kMaxRecordType + 1];
};

}  // namespace pipelsm::log
