// WAL reader: reassembles logical records from physical fragments,
// skipping corrupt tails (torn writes) and reporting corruption via a
// caller-supplied Reporter.
#pragma once

#include <cstdint>
#include <string>

#include "src/env/env.h"
#include "src/util/slice.h"
#include "src/util/status.h"
#include "src/wal/log_format.h"

namespace pipelsm::log {

class Reader {
 public:
  // Interface for reporting errors.
  class Reporter {
   public:
    virtual ~Reporter() = default;
    // Some corruption was detected. "size" is the approximate number of
    // bytes dropped due to the corruption.
    virtual void Corruption(size_t bytes, const Status& status) = 0;
  };

  // Create a reader that returns log records from "*file", which must
  // remain live while this Reader is in use.
  //
  // If "reporter" is non-null, it is notified whenever data is dropped.
  // If "checksum" is true, verify checksums when available.
  // Starts reading at the first record at or past initial_offset.
  Reader(SequentialFile* file, Reporter* reporter, bool checksum,
         uint64_t initial_offset);

  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  ~Reader();

  // Read the next record into *record. Returns true if read successfully,
  // false on EOF. *scratch may be used as temporary storage.
  bool ReadRecord(Slice* record, std::string* scratch);

  // Offset of the last record returned by ReadRecord.
  uint64_t LastRecordOffset();

 private:
  // Extend record types with the following special values.
  enum {
    kEof = kMaxRecordType + 1,
    // Returned whenever we find an invalid physical record (bad CRC, bad
    // length, or payload in the skip region).
    kBadRecord = kMaxRecordType + 2
  };

  // Skips all blocks that are completely before "initial_offset_".
  bool SkipToInitialBlock();

  // Return type, or one of the preceding special values.
  unsigned int ReadPhysicalRecord(Slice* result);

  void ReportCorruption(uint64_t bytes, const char* reason);
  void ReportDrop(uint64_t bytes, const Status& reason);

  SequentialFile* const file_;
  Reporter* const reporter_;
  bool const checksum_;
  char* const backing_store_;
  Slice buffer_;
  bool eof_;  // Last Read() indicated EOF by returning < kBlockSize

  // Offset of the last record returned by ReadRecord.
  uint64_t last_record_offset_;
  // Offset of the first location past the end of buffer_.
  uint64_t end_of_buffer_offset_;

  // Offset at which to start looking for the first record to return.
  uint64_t const initial_offset_;

  // True if we are resynchronizing after a seek (initial_offset_ > 0). In
  // particular, a run of kMiddleType and kLastType records can be silently
  // skipped in this mode.
  bool resyncing_;
};

}  // namespace pipelsm::log
