#include "src/table/merger.h"

#include <cassert>
#include <memory>
#include <vector>

#include "src/table/comparator.h"

namespace pipelsm {

namespace {

class MergingIterator final : public Iterator {
 public:
  MergingIterator(const Comparator* comparator, Iterator** children, int n)
      : comparator_(comparator), current_(nullptr), direction_(kForward) {
    children_.reserve(n);
    for (int i = 0; i < n; i++) {
      children_.emplace_back(children[i]);
    }
  }

  bool Valid() const override { return current_ != nullptr; }

  void SeekToFirst() override {
    for (auto& child : children_) {
      child->SeekToFirst();
    }
    FindSmallest();
    direction_ = kForward;
  }

  void SeekToLast() override {
    for (auto& child : children_) {
      child->SeekToLast();
    }
    FindLargest();
    direction_ = kReverse;
  }

  void Seek(const Slice& target) override {
    for (auto& child : children_) {
      child->Seek(target);
    }
    FindSmallest();
    direction_ = kForward;
  }

  void Next() override {
    assert(Valid());

    // Ensure that all children are positioned after key(). If we are moving
    // in the forward direction, this is already true; otherwise we need to
    // reposition the non-current children.
    if (direction_ != kForward) {
      for (auto& child : children_) {
        if (child.get() != current_) {
          child->Seek(key());
          if (child->Valid() &&
              comparator_->Compare(key(), child->key()) == 0) {
            child->Next();
          }
        }
      }
      direction_ = kForward;
    }

    current_->Next();
    FindSmallest();
  }

  void Prev() override {
    assert(Valid());

    if (direction_ != kReverse) {
      for (auto& child : children_) {
        if (child.get() != current_) {
          child->Seek(key());
          if (child->Valid()) {
            // Child is at first entry >= key(). Step back one.
            child->Prev();
          } else {
            // Child has no entries >= key(). Position at last entry.
            child->SeekToLast();
          }
        }
      }
      direction_ = kReverse;
    }

    current_->Prev();
    FindLargest();
  }

  Slice key() const override {
    assert(Valid());
    return current_->key();
  }

  Slice value() const override {
    assert(Valid());
    return current_->value();
  }

  Status status() const override {
    for (const auto& child : children_) {
      Status s = child->status();
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

 private:
  enum Direction { kForward, kReverse };

  void FindSmallest() {
    Iterator* smallest = nullptr;
    for (auto& child : children_) {
      if (child->Valid()) {
        if (smallest == nullptr ||
            comparator_->Compare(child->key(), smallest->key()) < 0) {
          smallest = child.get();
        }
      }
    }
    current_ = smallest;
  }

  void FindLargest() {
    Iterator* largest = nullptr;
    // Reverse order so ties prefer earlier children when going backward.
    for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
      if ((*it)->Valid()) {
        if (largest == nullptr ||
            comparator_->Compare((*it)->key(), largest->key()) > 0) {
          largest = it->get();
        }
      }
    }
    current_ = largest;
  }

  const Comparator* comparator_;
  std::vector<std::unique_ptr<Iterator>> children_;
  Iterator* current_;
  Direction direction_;
};

}  // namespace

Iterator* NewMergingIterator(const Comparator* comparator, Iterator** children,
                             int n) {
  assert(n >= 0);
  if (n == 0) {
    return NewEmptyIterator();
  } else if (n == 1) {
    return children[0];
  }
  return new MergingIterator(comparator, children, n);
}

}  // namespace pipelsm
