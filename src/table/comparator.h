// Comparator: total order over keys, plus the two key-shortening hooks the
// table format uses to keep index blocks small.
#pragma once

#include <string>

#include "src/util/slice.h"

namespace pipelsm {

class Comparator {
 public:
  virtual ~Comparator() = default;

  // Three-way comparison: <0 iff a < b, 0 iff equal, >0 iff a > b.
  virtual int Compare(const Slice& a, const Slice& b) const = 0;

  // Name of the comparator; persisted implicitly via file formats that
  // depend on the ordering. Changing the order under a name corrupts data.
  virtual const char* Name() const = 0;

  // If *start < limit, change *start to a short string in [start,limit).
  // Used to pick short index-block separators.
  virtual void FindShortestSeparator(std::string* start,
                                     const Slice& limit) const = 0;

  // Change *key to a short string >= *key.
  virtual void FindShortSuccessor(std::string* key) const = 0;
};

// Lexicographic byte order. Singleton; never deleted.
const Comparator* BytewiseComparator();

}  // namespace pipelsm
