// Two-level iterator: walks an index iterator whose values identify the
// inputs to a block-iterator factory. Used for table iteration (index block
// → data blocks) and level iteration (file list → tables).
#pragma once

#include <functional>

#include "src/table/iterator.h"

namespace pipelsm {

// block_function(index_value) returns an iterator over the corresponding
// block's contents; ownership passes to the two-level iterator.
Iterator* NewTwoLevelIterator(
    Iterator* index_iter,
    std::function<Iterator*(const Slice& index_value)> block_function);

}  // namespace pipelsm
