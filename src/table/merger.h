// Merging iterator: the sorted union of n child iterators. This is the
// S4 (SORT) engine of the compaction procedure and the read path's
// multi-level view.
#pragma once

#include "src/table/iterator.h"

namespace pipelsm {

class Comparator;

// Takes ownership of children[0..n-1]. Duplicate keys appear in child
// order (callers that need precedence — e.g. internal keys with sequence
// numbers — encode it in the key).
Iterator* NewMergingIterator(const Comparator* comparator, Iterator** children,
                             int n);

}  // namespace pipelsm
