// BlockCache: LRU cache of decompressed data blocks shared by all open
// tables. Entries are pinned by shared_ptr refcounts, so eviction never
// invalidates a block an iterator is standing on.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/util/slice.h"

namespace pipelsm {

class Block;

class BlockCache {
 public:
  explicit BlockCache(size_t capacity_bytes) : capacity_(capacity_bytes) {}

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  // Returns the cached block or nullptr. Promotes the entry to MRU.
  std::shared_ptr<Block> Lookup(const Slice& key);

  // Inserts (replacing any existing entry) and evicts LRU entries until
  // usage <= capacity.
  void Insert(const Slice& key, std::shared_ptr<Block> block, size_t charge);

  void Erase(const Slice& key);

  // Distinct prefix for each table's keys in a shared cache.
  uint64_t NewId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  size_t usage() const {
    std::lock_guard<std::mutex> lock(mu_);
    return usage_;
  }
  size_t capacity() const { return capacity_; }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<Block> block;
    size_t charge;
  };
  using LruList = std::list<Entry>;

  const size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;  // front = MRU
  std::unordered_map<std::string, LruList::iterator> index_;
  size_t usage_ = 0;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace pipelsm
