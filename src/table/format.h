// On-disk SSTable framing: block handles, footer, and the shared
// read-verify-decompress path.
//
// Layout (Figure 1(b) of the paper, concretized as the LevelDB format):
//
//   [data block 1] [data block 2] ... [data block N]
//   [filter block]                       (optional)
//   [metaindex block]
//   [index block]
//   [footer: metaindex handle, index handle, magic]   (fixed size)
//
// Every block is followed by a 5-byte trailer: 1 compression-type byte and
// a 4-byte masked CRC32C over (block contents + type byte). The trailer is
// what the paper's S2/S6 steps verify/produce.
#pragma once

#include <cstdint>
#include <string>

#include "src/compress/codec.h"
#include "src/env/env.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace pipelsm {

// A pointer to the extent of a block within a file.
class BlockHandle {
 public:
  // Maximum encoding length of a BlockHandle.
  enum { kMaxEncodedLength = 10 + 10 };

  BlockHandle() : offset_(~0ull), size_(~0ull) {}

  uint64_t offset() const { return offset_; }
  void set_offset(uint64_t offset) { offset_ = offset; }
  uint64_t size() const { return size_; }
  void set_size(uint64_t size) { size_ = size; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

 private:
  uint64_t offset_;
  uint64_t size_;
};

// Footer at the tail of every table file.
class Footer {
 public:
  enum { kEncodedLength = 2 * BlockHandle::kMaxEncodedLength + 8 };

  const BlockHandle& metaindex_handle() const { return metaindex_handle_; }
  void set_metaindex_handle(const BlockHandle& h) { metaindex_handle_ = h; }
  const BlockHandle& index_handle() const { return index_handle_; }
  void set_index_handle(const BlockHandle& h) { index_handle_ = h; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

 private:
  BlockHandle metaindex_handle_;
  BlockHandle index_handle_;
};

constexpr uint64_t kTableMagicNumber = 0x70697065'6c736d31ull;  // "pipelsm1"

// 1-byte compression type + 4-byte masked crc32c.
constexpr size_t kBlockTrailerSize = 5;

struct BlockContents {
  Slice data;            // actual contents of the block
  bool cachable;         // true iff data is heap-allocated
  bool heap_allocated;   // true iff caller should delete[] data.data()
};

// Reads the block identified by `handle`, verifies the trailer CRC and
// decompresses — i.e. performs S1+S2+S3 of the compaction procedure for one
// block. `verify_checksum` lets read paths opt out.
Status ReadBlock(RandomAccessFile* file, const BlockHandle& handle,
                 bool verify_checksum, BlockContents* result);

// The raw compressed payload of one block, as moved between pipeline
// stages: the compaction executors read raw bytes in the read stage (S1)
// and verify/decompress in the compute stage (S2/S3), so the two halves of
// ReadBlock are also exposed separately.
struct RawBlock {
  std::string payload;   // compressed bytes + 5-byte trailer
  BlockHandle handle;    // where it came from
};

// S1 only: fetch payload + trailer bytes, no verification, no decompression.
Status ReadRawBlock(RandomAccessFile* file, const BlockHandle& handle,
                    RawBlock* out);

// S2: verify a raw block's trailer CRC.
Status VerifyRawBlock(const RawBlock& raw);

// S3: decompress a raw block's payload into *contents (which owns the
// bytes).
Status DecodeRawBlock(const RawBlock& raw, std::string* contents);

}  // namespace pipelsm
