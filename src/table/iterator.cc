#include "src/table/iterator.h"

namespace pipelsm {

Iterator::~Iterator() {
  CleanupNode* node = cleanup_head_;
  while (node != nullptr) {
    node->fn();
    CleanupNode* next = node->next;
    delete node;
    node = next;
  }
}

void Iterator::RegisterCleanup(std::function<void()> cleanup) {
  CleanupNode* node = new CleanupNode{std::move(cleanup), cleanup_head_};
  cleanup_head_ = node;
}

namespace {

class EmptyIterator final : public Iterator {
 public:
  explicit EmptyIterator(const Status& s) : status_(s) {}

  bool Valid() const override { return false; }
  void Seek(const Slice&) override {}
  void SeekToFirst() override {}
  void SeekToLast() override {}
  void Next() override {}
  void Prev() override {}
  Slice key() const override { return Slice(); }
  Slice value() const override { return Slice(); }
  Status status() const override { return status_; }

 private:
  Status status_;
};

}  // namespace

Iterator* NewEmptyIterator() { return new EmptyIterator(Status::OK()); }

Iterator* NewErrorIterator(const Status& status) {
  return new EmptyIterator(status);
}

}  // namespace pipelsm
