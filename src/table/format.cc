#include "src/table/format.h"

#include <cassert>
#include <cstring>

#include "src/compress/lz_codec.h"
#include "src/util/coding.h"
#include "src/util/crc32c.h"

namespace pipelsm {

void BlockHandle::EncodeTo(std::string* dst) const {
  // Sanity check that all fields have been set.
  assert(offset_ != ~0ull);
  assert(size_ != ~0ull);
  PutVarint64(dst, offset_);
  PutVarint64(dst, size_);
}

Status BlockHandle::DecodeFrom(Slice* input) {
  if (GetVarint64(input, &offset_) && GetVarint64(input, &size_)) {
    return Status::OK();
  }
  return Status::Corruption("bad block handle");
}

void Footer::EncodeTo(std::string* dst) const {
  const size_t original_size = dst->size();
  metaindex_handle_.EncodeTo(dst);
  index_handle_.EncodeTo(dst);
  dst->resize(original_size + 2 * BlockHandle::kMaxEncodedLength);  // Padding
  PutFixed32(dst, static_cast<uint32_t>(kTableMagicNumber & 0xffffffffu));
  PutFixed32(dst, static_cast<uint32_t>(kTableMagicNumber >> 32));
  assert(dst->size() == original_size + kEncodedLength);
}

Status Footer::DecodeFrom(Slice* input) {
  if (input->size() < kEncodedLength) {
    return Status::Corruption("footer too short");
  }
  const char* magic_ptr = input->data() + kEncodedLength - 8;
  const uint32_t magic_lo = DecodeFixed32(magic_ptr);
  const uint32_t magic_hi = DecodeFixed32(magic_ptr + 4);
  const uint64_t magic = ((static_cast<uint64_t>(magic_hi) << 32) |
                          (static_cast<uint64_t>(magic_lo)));
  if (magic != kTableMagicNumber) {
    return Status::Corruption("not an sstable (bad magic number)");
  }

  Status result = metaindex_handle_.DecodeFrom(input);
  if (result.ok()) {
    result = index_handle_.DecodeFrom(input);
  }
  if (result.ok()) {
    // Skip over any leftover data (just padding for now).
    const char* end = magic_ptr + 8;
    *input = Slice(end, input->data() + input->size() - end);
  }
  return result;
}

Status ReadRawBlock(RandomAccessFile* file, const BlockHandle& handle,
                    RawBlock* out) {
  const size_t n = static_cast<size_t>(handle.size());
  out->handle = handle;
  out->payload.resize(n + kBlockTrailerSize);
  Slice contents;
  Status s = file->Read(handle.offset(), n + kBlockTrailerSize, &contents,
                        out->payload.data());
  if (!s.ok()) return s;
  if (contents.size() != n + kBlockTrailerSize) {
    return Status::Corruption("truncated block read");
  }
  if (contents.data() != out->payload.data()) {
    out->payload.assign(contents.data(), contents.size());
  }
  return Status::OK();
}

Status VerifyRawBlock(const RawBlock& raw) {
  if (raw.payload.size() < kBlockTrailerSize) {
    return Status::Corruption("block too small for trailer");
  }
  const size_t n = raw.payload.size() - kBlockTrailerSize;
  const char* data = raw.payload.data();
  const uint32_t crc = crc32c::Unmask(DecodeFixed32(data + n + 1));
  const uint32_t actual = crc32c::Value(data, n + 1);
  if (actual != crc) {
    return Status::Corruption("block checksum mismatch");
  }
  return Status::OK();
}

Status DecodeRawBlock(const RawBlock& raw, std::string* contents) {
  if (raw.payload.size() < kBlockTrailerSize) {
    return Status::Corruption("block too small for trailer");
  }
  const size_t n = raw.payload.size() - kBlockTrailerSize;
  const char* data = raw.payload.data();
  const auto type = static_cast<CompressionType>(data[n]);
  return UncompressBlock(type, Slice(data, n), contents);
}

Status ReadBlock(RandomAccessFile* file, const BlockHandle& handle,
                 bool verify_checksum, BlockContents* result) {
  result->data = Slice();
  result->cachable = false;
  result->heap_allocated = false;

  RawBlock raw;
  Status s = ReadRawBlock(file, handle, &raw);
  if (!s.ok()) return s;

  if (verify_checksum) {
    s = VerifyRawBlock(raw);
    if (!s.ok()) return s;
  }

  const size_t n = raw.payload.size() - kBlockTrailerSize;
  const char* data = raw.payload.data();
  switch (static_cast<CompressionType>(data[n])) {
    case CompressionType::kNoCompression: {
      char* buf = new char[n];
      std::memcpy(buf, data, n);
      result->data = Slice(buf, n);
      result->heap_allocated = true;
      result->cachable = true;
      return Status::OK();
    }
    case CompressionType::kLzCompression: {
      std::string decoded;
      s = lz::Uncompress(data, n, &decoded);
      if (!s.ok()) return s;
      char* buf = new char[decoded.size()];
      std::memcpy(buf, decoded.data(), decoded.size());
      result->data = Slice(buf, decoded.size());
      result->heap_allocated = true;
      result->cachable = true;
      return Status::OK();
    }
    default:
      return Status::Corruption("unknown block compression type");
  }
}

}  // namespace pipelsm
