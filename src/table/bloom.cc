#include "src/table/filter_policy.h"

#include <cstdint>

namespace pipelsm {

namespace {

// Murmur-inspired hash used only for bloom probing (double hashing).
uint32_t BloomHash(const Slice& key) {
  const char* data = key.data();
  size_t n = key.size();
  const uint32_t seed = 0xbc9f1d34;
  const uint32_t m = 0xc6a4a793;
  uint32_t h = seed ^ static_cast<uint32_t>(n * m);
  while (n >= 4) {
    uint32_t w;
    __builtin_memcpy(&w, data, 4);
    h += w;
    h *= m;
    h ^= (h >> 16);
    data += 4;
    n -= 4;
  }
  switch (n) {
    case 3:
      h += static_cast<uint8_t>(data[2]) << 16;
      [[fallthrough]];
    case 2:
      h += static_cast<uint8_t>(data[1]) << 8;
      [[fallthrough]];
    case 1:
      h += static_cast<uint8_t>(data[0]);
      h *= m;
      h ^= (h >> 24);
      break;
  }
  return h;
}

class BloomFilterPolicy final : public FilterPolicy {
 public:
  explicit BloomFilterPolicy(int bits_per_key) : bits_per_key_(bits_per_key) {
    // Round down k = bits_per_key * ln(2); clamp to a sane range.
    k_ = static_cast<size_t>(bits_per_key * 0.69);
    if (k_ < 1) k_ = 1;
    if (k_ > 30) k_ = 30;
  }

  const char* Name() const override { return "pipelsm.BuiltinBloomFilter"; }

  void CreateFilter(const Slice* keys, size_t n,
                    std::string* dst) const override {
    // Compute bloom filter size (in both bits and bytes).
    size_t bits = n * bits_per_key_;
    // A tiny filter has a huge false-positive rate; enforce a floor.
    if (bits < 64) bits = 64;
    const size_t bytes = (bits + 7) / 8;
    bits = bytes * 8;

    const size_t init_size = dst->size();
    dst->resize(init_size + bytes, 0);
    dst->push_back(static_cast<char>(k_));  // Remember # of probes
    char* array = &(*dst)[init_size];
    for (size_t i = 0; i < n; i++) {
      // Double hashing: h, h+delta, h+2*delta, ...
      uint32_t h = BloomHash(keys[i]);
      const uint32_t delta = (h >> 17) | (h << 15);
      for (size_t j = 0; j < k_; j++) {
        const uint32_t bitpos = h % bits;
        array[bitpos / 8] |= (1 << (bitpos % 8));
        h += delta;
      }
    }
  }

  bool KeyMayMatch(const Slice& key, const Slice& bloom_filter) const override {
    const size_t len = bloom_filter.size();
    if (len < 2) return false;

    const char* array = bloom_filter.data();
    const size_t bits = (len - 1) * 8;

    // Use the encoded k so we can read filters built with a different
    // parameterization.
    const size_t k = static_cast<uint8_t>(array[len - 1]);
    if (k > 30) {
      // Reserved for future encodings; treat as a match.
      return true;
    }

    uint32_t h = BloomHash(key);
    const uint32_t delta = (h >> 17) | (h << 15);
    for (size_t j = 0; j < k; j++) {
      const uint32_t bitpos = h % bits;
      if ((array[bitpos / 8] & (1 << (bitpos % 8))) == 0) return false;
      h += delta;
    }
    return true;
  }

 private:
  const int bits_per_key_;
  size_t k_;
};

}  // namespace

const FilterPolicy* NewBloomFilterPolicy(int bits_per_key) {
  return new BloomFilterPolicy(bits_per_key);
}

}  // namespace pipelsm
