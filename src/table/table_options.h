// Knobs shared by the table builder/reader. The DB layer derives these
// from its own Options so the table layer stays independent.
#pragma once

#include <cstddef>

#include "src/compress/codec.h"
#include "src/table/comparator.h"

namespace pipelsm {

class FilterPolicy;
namespace read {
class Cache;
}  // namespace read

struct TableOptions {
  const Comparator* comparator = BytewiseComparator();
  const FilterPolicy* filter_policy = nullptr;  // optional bloom filters
  read::Cache* block_cache = nullptr;           // optional shared cache

  // Target payload size of one bloom-filter partition (docs/READ_PATH.md);
  // a point read loads only the partition covering the probed offset.
  size_t filter_partition_bytes = 4096;

  // Uncompressed data-block size target. The paper's default is 4 KB.
  size_t block_size = 4 * 1024;

  // Keys between restart points in a block.
  int block_restart_interval = 16;

  // S5 codec for data blocks.
  CompressionType compression = CompressionType::kLzCompression;

  // Verify block trailers (S2) when reading.
  bool verify_checksums = true;
};

// Per-read overrides (derived from the DB's ReadOptions).
struct TableReadOptions {
  bool verify_checksums = false;  // additionally verify data-block CRCs
  bool fill_cache = true;         // insert fetched blocks into the cache
};

}  // namespace pipelsm
