// Table: immutable SSTable reader.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "src/env/env.h"
#include "src/table/iterator.h"
#include "src/table/table_options.h"
#include "src/util/status.h"

namespace pipelsm {

class Block;
class BlockHandle;
class FilterBlockReader;
class Footer;

class Table {
 public:
  // Opens the table stored in file[0..file_size). On success *table owns
  // the reader (and keeps using *file, whose ownership it takes).
  static Status Open(const TableOptions& options,
                     std::unique_ptr<RandomAccessFile> file,
                     uint64_t file_size, std::unique_ptr<Table>* table);

  ~Table();

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  // Iterator over the table's contents (keys as written, i.e. internal keys
  // when built by the DB layer).
  Iterator* NewIterator(const TableReadOptions& read_options = {}) const;

  // Calls handle_result(k, v) for the entry found at or after `key`, after
  // consulting the bloom filter. Used by the DB's point-read path.
  Status InternalGet(const TableReadOptions& read_options, const Slice& key,
                     const std::function<void(const Slice&, const Slice&)>&
                         handle_result) const;

  // Approximate file offset where `key`'s data begins (for metrics and
  // compaction planning).
  uint64_t ApproximateOffsetOf(const Slice& key) const;

  // The table's index iterator and raw-block loader are exposed so the
  // compaction planner can enumerate data-block extents per sub-task and
  // the read stage (S1) can fetch compressed payloads without verifying or
  // decompressing them (S2/S3 happen in the compute stage).
  Iterator* NewIndexIterator() const;
  Status ReadRaw(const class BlockHandle& handle, struct RawBlock* out) const;
  // One large read covering [offset, offset+size) — the coalesced S1 path
  // ("the I/O size is equal to the sub-task size", paper §IV-C).
  Status ReadExtent(uint64_t offset, uint64_t size, std::string* out) const;
  const TableOptions& options() const;

  // Id prefixing this table's entries in the shared block cache (0 when
  // no cache is configured). Obsolete-file GC uses it to purge the
  // table's blocks when the file is deleted.
  uint64_t cache_id() const;

 private:
  struct Rep;
  explicit Table(Rep* rep);

  Iterator* ReadBlockIterator(const TableReadOptions& read_options,
                              const Slice& index_value) const;
  void ReadMeta(const Footer& footer);
  void ReadFilter(const Slice& filter_handle_value);
  bool FilterKeyMayMatch(const TableReadOptions& read_options,
                         uint64_t block_offset, const Slice& key) const;

  std::unique_ptr<Rep> rep_;
};

}  // namespace pipelsm
