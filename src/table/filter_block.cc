#include "src/table/filter_block.h"

#include <cassert>

#include "src/table/filter_policy.h"
#include "src/util/coding.h"
#include "src/util/crc32c.h"

namespace pipelsm {

static const size_t kFilterBase = 1 << kFilterBaseLg;

// Tail = index offset (4) + partition count (4) + base_lg (1).
static const size_t kFilterTailBytes = 9;
static const size_t kFilterIndexEntryBytes = 16;

FilterBlockBuilder::FilterBlockBuilder(const FilterPolicy* policy,
                                       size_t partition_bytes)
    : policy_(policy),
      partition_bytes_(partition_bytes == 0 ? kDefaultFilterPartitionBytes
                                            : partition_bytes) {}

void FilterBlockBuilder::StartBlock(uint64_t block_offset) {
  uint64_t filter_index = (block_offset / kFilterBase);
  assert(filter_index >= next_window_);
  while (filter_index > next_window_) {
    GenerateFilter();
  }
}

void FilterBlockBuilder::AddKey(const Slice& key) {
  Slice k = key;
  start_.push_back(keys_.size());
  keys_.append(k.data(), k.size());
}

Slice FilterBlockBuilder::Finish() {
  if (!start_.empty()) {
    GenerateFilter();
  }
  SealPartition();

  const uint32_t index_offset = static_cast<uint32_t>(result_.size());
  for (const FilterPartitionInfo& p : partitions_) {
    PutFixed32(&result_, p.first_window);
    PutFixed32(&result_, p.num_windows);
    PutFixed32(&result_, p.offset);
    PutFixed32(&result_, p.size);
  }
  PutFixed32(&result_, index_offset);
  PutFixed32(&result_, static_cast<uint32_t>(partitions_.size()));
  result_.push_back(static_cast<char>(kFilterBaseLg));
  return Slice(result_);
}

void FilterBlockBuilder::GenerateFilter() {
  partition_offsets_.push_back(static_cast<uint32_t>(partition_data_.size()));
  next_window_++;

  const size_t num_keys = start_.size();
  if (num_keys != 0) {
    // Make list of keys from flattened key structure.
    start_.push_back(keys_.size());  // Simplify length computation
    tmp_keys_.resize(num_keys);
    for (size_t i = 0; i < num_keys; i++) {
      const char* base = keys_.data() + start_[i];
      size_t length = start_[i + 1] - start_[i];
      tmp_keys_[i] = Slice(base, length);
    }
    policy_->CreateFilter(tmp_keys_.data(), num_keys, &partition_data_);
    tmp_keys_.clear();
    keys_.clear();
    start_.clear();
  }

  if (partition_data_.size() >= partition_bytes_) {
    SealPartition();
  }
}

void FilterBlockBuilder::SealPartition() {
  if (partition_offsets_.empty()) return;

  FilterPartitionInfo info;
  info.first_window = partition_first_window_;
  info.num_windows = static_cast<uint32_t>(partition_offsets_.size());
  info.offset = static_cast<uint32_t>(result_.size());

  const uint32_t array_start = static_cast<uint32_t>(partition_data_.size());
  for (uint32_t offset : partition_offsets_) {
    PutFixed32(&partition_data_, offset);
  }
  PutFixed32(&partition_data_, array_start);
  const uint32_t crc =
      crc32c::Value(partition_data_.data(), partition_data_.size());
  PutFixed32(&partition_data_, crc32c::Mask(crc));

  info.size = static_cast<uint32_t>(partition_data_.size());
  partitions_.push_back(info);
  result_.append(partition_data_);

  partition_data_.clear();
  partition_offsets_.clear();
  partition_first_window_ = static_cast<uint32_t>(next_window_);
}

bool FilterIndex::Parse(const Slice& contents) {
  return ParseTail(contents, contents.size());
}

bool FilterIndex::ParseTail(const Slice& tail, uint64_t block_size) {
  valid_ = false;
  partitions_.clear();
  const size_t n = tail.size();
  if (n < kFilterTailBytes || n > block_size) return false;
  base_lg_ = static_cast<unsigned char>(tail[n - 1]);
  if (base_lg_ > 30) return false;
  const uint32_t num_partitions = DecodeFixed32(tail.data() + n - 5);
  const uint32_t index_offset = DecodeFixed32(tail.data() + n - 9);
  const uint64_t index_bytes =
      static_cast<uint64_t>(num_partitions) * kFilterIndexEntryBytes;
  // The index must sit immediately before the tail words, inside the
  // region this slice covers.
  if (index_offset + index_bytes + kFilterTailBytes != block_size)
    return false;
  const uint64_t tail_start = block_size - n;
  if (index_offset < tail_start) return false;

  const char* p = tail.data() + (index_offset - tail_start);
  partitions_.reserve(num_partitions);
  uint64_t next_window = 0;
  for (uint32_t i = 0; i < num_partitions; i++) {
    FilterPartitionInfo info;
    info.first_window = DecodeFixed32(p);
    info.num_windows = DecodeFixed32(p + 4);
    info.offset = DecodeFixed32(p + 8);
    info.size = DecodeFixed32(p + 12);
    p += kFilterIndexEntryBytes;
    // Partitions must cover contiguous, ascending window ranges and lie
    // before the index.
    if (info.first_window != next_window || info.num_windows == 0) {
      partitions_.clear();
      return false;
    }
    if (static_cast<uint64_t>(info.offset) + info.size > index_offset) {
      partitions_.clear();
      return false;
    }
    next_window = static_cast<uint64_t>(info.first_window) + info.num_windows;
    partitions_.push_back(info);
  }
  valid_ = true;
  return true;
}

bool FilterIndex::Lookup(uint64_t window, FilterPartitionInfo* out) const {
  if (!valid_ || partitions_.empty()) return false;
  // Binary search: last partition with first_window <= window.
  size_t lo = 0, hi = partitions_.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (partitions_[mid].first_window <= window) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return false;
  const FilterPartitionInfo& p = partitions_[lo - 1];
  if (window >= static_cast<uint64_t>(p.first_window) + p.num_windows) {
    return false;
  }
  *out = p;
  return true;
}

bool FilterPartitionKeyMayMatch(const FilterPolicy* policy,
                                const Slice& partition, uint32_t num_windows,
                                uint32_t window_in_partition,
                                const Slice& key) {
  const size_t offsets_and_crc =
      (static_cast<size_t>(num_windows) + 1) * 4 + 4;
  if (window_in_partition >= num_windows ||
      partition.size() < offsets_and_crc) {
    return true;  // Errors are treated as potential matches
  }
  const size_t array_start = partition.size() - offsets_and_crc;
  const char* offsets = partition.data() + array_start;
  const uint32_t start = DecodeFixed32(offsets + window_in_partition * 4);
  const uint32_t limit = DecodeFixed32(offsets + window_in_partition * 4 + 4);
  if (start == limit) return false;  // Empty filters do not match any keys
  if (start < limit && limit <= array_start) {
    return policy->KeyMayMatch(key, Slice(partition.data() + start,
                                          limit - start));
  }
  return true;
}

bool FilterPartitionCrcOk(const Slice& partition) {
  if (partition.size() < 4) return false;
  const uint32_t stored =
      DecodeFixed32(partition.data() + partition.size() - 4);
  const uint32_t actual =
      crc32c::Value(partition.data(), partition.size() - 4);
  return crc32c::Unmask(stored) == actual;
}

FilterBlockReader::FilterBlockReader(const FilterPolicy* policy,
                                     const Slice& contents)
    : policy_(policy), contents_(contents) {
  index_.Parse(contents);
}

bool FilterBlockReader::KeyMayMatch(uint64_t block_offset, const Slice& key) {
  if (!index_.valid()) return true;
  const uint64_t window = block_offset >> index_.base_lg();
  FilterPartitionInfo p;
  if (!index_.Lookup(window, &p)) {
    // Beyond the covered range: no filter was built for this offset.
    return true;
  }
  if (static_cast<uint64_t>(p.offset) + p.size > contents_.size()) {
    return true;
  }
  return FilterPartitionKeyMayMatch(
      policy_, Slice(contents_.data() + p.offset, p.size), p.num_windows,
      static_cast<uint32_t>(window - p.first_window), key);
}

}  // namespace pipelsm
