// FilterPolicy + Bloom filter. Per the paper's related-work discussion
// (bLSM), bloom filters avoid disk I/O for levels that cannot contain the
// sought-after key; the table format stores one filter block per SSTable.
#pragma once

#include <string>
#include <vector>

#include "src/util/slice.h"

namespace pipelsm {

class FilterPolicy {
 public:
  virtual ~FilterPolicy() = default;

  // Name persisted in the table's metaindex; a reader with a
  // differently-named policy ignores the filter.
  virtual const char* Name() const = 0;

  // Append a filter summarizing keys[0..n-1] to *dst.
  virtual void CreateFilter(const Slice* keys, size_t n,
                            std::string* dst) const = 0;

  // True if key may be in the list the filter was built from; false means
  // definitely absent.
  virtual bool KeyMayMatch(const Slice& key, const Slice& filter) const = 0;
};

// Bloom filter with ~bits_per_key bits per key (10 → ~1% false positives).
// Singleton-per-configuration; caller owns the result.
const FilterPolicy* NewBloomFilterPolicy(int bits_per_key);

}  // namespace pipelsm
