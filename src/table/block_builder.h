// BlockBuilder: builds the prefix-compressed key/value block format.
//
// Keys are delta-encoded against their predecessor; every `restart
// interval` keys a full key is stored and its offset recorded so a block
// iterator can binary-search the restart array.
//
// Entry:   shared_len varint32 | non_shared_len varint32 |
//          value_len varint32 | key_delta | value
// Trailer: restart offsets (fixed32 each) | num_restarts (fixed32)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/slice.h"

namespace pipelsm {

class Comparator;

class BlockBuilder {
 public:
  explicit BlockBuilder(int restart_interval);

  BlockBuilder(const BlockBuilder&) = delete;
  BlockBuilder& operator=(const BlockBuilder&) = delete;

  // Reset the contents as if the BlockBuilder was just constructed.
  void Reset();

  // REQUIRES: key is larger than any previously added key.
  void Add(const Slice& key, const Slice& value);

  // Finish building the block and return a slice that refers to the
  // block contents, valid until Reset().
  Slice Finish();

  // Estimate of the uncompressed size of the block under construction.
  size_t CurrentSizeEstimate() const;

  bool empty() const { return buffer_.empty(); }

 private:
  const int restart_interval_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_;    // entries emitted since last restart
  bool finished_;
  std::string last_key_;
};

}  // namespace pipelsm
