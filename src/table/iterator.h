// Iterator: the uniform cursor over sorted key/value sequences (blocks,
// tables, memtables, merged views, the DB itself).
#pragma once

#include <functional>

#include "src/util/slice.h"
#include "src/util/status.h"

namespace pipelsm {

class Iterator {
 public:
  Iterator() = default;
  virtual ~Iterator();

  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  virtual void SeekToLast() = 0;
  // Position at the first entry with key >= target.
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;
  virtual void Prev() = 0;

  // REQUIRES: Valid(). Slices stay valid until the next mutation.
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;

  virtual Status status() const = 0;

  // Clients may register a cleanup to run when the iterator is destroyed
  // (used to pin cache handles / table references).
  void RegisterCleanup(std::function<void()> cleanup);

 private:
  struct CleanupNode {
    std::function<void()> fn;
    CleanupNode* next;
  };
  CleanupNode* cleanup_head_ = nullptr;
};

// An empty iterator (immediately !Valid()) carrying `status`.
Iterator* NewEmptyIterator();
Iterator* NewErrorIterator(const Status& status);

}  // namespace pipelsm
