// TableBuilder: streams sorted key/value pairs into one SSTable file.
//
// Data blocks are cut at TableOptions::block_size (uncompressed), each one
// compressed (S5), checksummed (S6) and appended (S7); the index block maps
// a shortened separator key to each data block's handle, exactly the
// SSTable layout in Figure 1(b) of the paper.
#pragma once

#include <cstdint>
#include <memory>

#include "src/env/env.h"
#include "src/table/table_options.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace pipelsm {

class TableBuilder {
 public:
  // Writes to *file, which must outlive the builder and remain unwritten by
  // anyone else. Does not close the file.
  TableBuilder(const TableOptions& options, WritableFile* file);
  ~TableBuilder();

  TableBuilder(const TableBuilder&) = delete;
  TableBuilder& operator=(const TableBuilder&) = delete;

  // REQUIRES: key is after any previously added key; !Finish/Abandon yet.
  void Add(const Slice& key, const Slice& value);

  // Flush any buffered key/value pairs to file (advanced: lets callers cut
  // a block early, e.g. at sub-task boundaries).
  void Flush();

  Status status() const;

  // Finish building the table (writes filter, metaindex, index, footer).
  Status Finish();

  // Abandon the buffered contents (file cleanup is the caller's job).
  void Abandon();

  uint64_t NumEntries() const;
  // Size of the file generated so far; after Finish(), the final size.
  uint64_t FileSize() const;

 private:
  struct Rep;
  void WriteBlock(class BlockBuilder* block, class BlockHandle* handle);
  void WriteRawBlock(const Slice& data, CompressionType type,
                     class BlockHandle* handle);
  bool ok() const { return status().ok(); }

  std::unique_ptr<Rep> rep_;
};

}  // namespace pipelsm
