// Filter block: one filter per 2 KiB window of data-block offsets, plus an
// offset array so a reader can find the filter covering any data block.
//
//   [filter 0] [filter 1] ... [filter N-1]
//   [offset of filter 0 (fixed32)] ... [offset of filter N-1]
//   [offset of offset array (fixed32)]
//   [lg(base) (1 byte)]
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/slice.h"

namespace pipelsm {

class FilterPolicy;

class FilterBlockBuilder {
 public:
  explicit FilterBlockBuilder(const FilterPolicy* policy);

  FilterBlockBuilder(const FilterBlockBuilder&) = delete;
  FilterBlockBuilder& operator=(const FilterBlockBuilder&) = delete;

  void StartBlock(uint64_t block_offset);
  void AddKey(const Slice& key);
  Slice Finish();

 private:
  void GenerateFilter();

  const FilterPolicy* policy_;
  std::string keys_;             // Flattened key contents
  std::vector<size_t> start_;    // Starting index in keys_ of each key
  std::string result_;           // Filter data computed so far
  std::vector<Slice> tmp_keys_;  // policy_->CreateFilter() argument
  std::vector<uint32_t> filter_offsets_;
};

class FilterBlockReader {
 public:
  // "contents" and *policy must stay live while *this is in use.
  FilterBlockReader(const FilterPolicy* policy, const Slice& contents);
  bool KeyMayMatch(uint64_t block_offset, const Slice& key);

 private:
  const FilterPolicy* policy_;
  const char* data_;    // Pointer to filter data (at block-start)
  const char* offset_;  // Pointer to beginning of offset array (at block-end)
  size_t num_;          // Number of entries in offset array
  size_t base_lg_;      // Encoding parameter (see kFilterBaseLg)
};

}  // namespace pipelsm
