// Partitioned filter block (docs/READ_PATH.md): per-2KiB-window filters
// grouped into fixed-size partitions, each independently loadable, with
// a small top-level index so a point read touches only the partition
// covering the probed data-block offset.
//
//   [partition 0] [partition 1] ... [partition P-1]
//   [top index: P x { first_window | num_windows | offset | size } (fixed32 each)]
//   [offset of top index (fixed32)]
//   [P (fixed32)]
//   [lg(base) (1 byte)]
//
// Each partition is self-contained:
//
//   [filter 0] ... [filter W-1]
//   [W+1 fixed32 offsets, relative to the partition start; the last one
//    doubles as the end of the filter data]
//   [masked crc32c of everything above (fixed32)]
//
// The per-partition CRC exists because lazy loaders read a partition's
// extent without the whole-block trailer check; a mismatch makes the
// probe fall back to "may match" instead of risking a false negative.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/slice.h"

namespace pipelsm {

class FilterPolicy;

// Data-block offsets are grouped into 1<<kFilterBaseLg windows; one
// filter covers one window.
constexpr size_t kFilterBaseLg = 11;

// Default partition payload size; Options::filter_partition_bytes
// overrides per DB.
constexpr size_t kDefaultFilterPartitionBytes = 4096;

// Top-index entry describing one partition's extent within the filter
// block and the window range it covers.
struct FilterPartitionInfo {
  uint32_t first_window = 0;
  uint32_t num_windows = 0;
  uint32_t offset = 0;  // partition start, relative to the filter block
  uint32_t size = 0;    // partition size including offsets + crc
};

class FilterBlockBuilder {
 public:
  explicit FilterBlockBuilder(const FilterPolicy* policy,
                              size_t partition_bytes =
                                  kDefaultFilterPartitionBytes);

  FilterBlockBuilder(const FilterBlockBuilder&) = delete;
  FilterBlockBuilder& operator=(const FilterBlockBuilder&) = delete;

  void StartBlock(uint64_t block_offset);
  void AddKey(const Slice& key);
  Slice Finish();

 private:
  void GenerateFilter();
  void SealPartition();

  const FilterPolicy* policy_;
  const size_t partition_bytes_;
  std::string keys_;             // Flattened key contents
  std::vector<size_t> start_;    // Starting index in keys_ of each key
  std::vector<Slice> tmp_keys_;  // policy_->CreateFilter() argument

  std::string partition_data_;   // filters of the partition being built
  std::vector<uint32_t> partition_offsets_;  // per-window filter starts
  uint32_t partition_first_window_ = 0;
  uint64_t next_window_ = 0;     // next window index to generate

  std::string result_;           // sealed partitions + (at Finish) index
  std::vector<FilterPartitionInfo> partitions_;
};

// Parses the top-level index. Usable either from the whole filter block
// (Parse) or from just its trailing bytes (ParseTail) when the caller
// wants to avoid reading partitions it may never probe.
class FilterIndex {
 public:
  FilterIndex() = default;

  // `contents` is the complete filter block.
  bool Parse(const Slice& contents);

  // `tail` is the final tail.size() bytes of a filter block of
  // `block_size` total bytes; it must cover the top index.
  bool ParseTail(const Slice& tail, uint64_t block_size);

  // Finds the partition covering `window`. Returns false if `window` is
  // past the covered range (callers treat that as "may match").
  bool Lookup(uint64_t window, FilterPartitionInfo* out) const;

  bool valid() const { return valid_; }
  size_t base_lg() const { return base_lg_; }
  size_t num_partitions() const { return partitions_.size(); }
  const FilterPartitionInfo& partition(size_t i) const {
    return partitions_[i];
  }

 private:
  std::vector<FilterPartitionInfo> partitions_;
  size_t base_lg_ = 0;
  bool valid_ = false;
};

// Probes one partition (laid out as described above) for the filter of
// `window_in_partition`. Does not verify the partition CRC — disk-backed
// callers verify before calling (see FilterPartitionCrcOk). Malformed
// input returns true (may match); an empty filter returns false.
bool FilterPartitionKeyMayMatch(const FilterPolicy* policy,
                                const Slice& partition, uint32_t num_windows,
                                uint32_t window_in_partition,
                                const Slice& key);

// Checks the partition's trailing masked crc32c.
bool FilterPartitionCrcOk(const Slice& partition);

// Whole-block in-memory reader: parses the index once and probes
// partitions in place. "contents" and *policy must stay live while
// *this is in use.
class FilterBlockReader {
 public:
  FilterBlockReader(const FilterPolicy* policy, const Slice& contents);
  bool KeyMayMatch(uint64_t block_offset, const Slice& key);

  const FilterIndex& index() const { return index_; }

 private:
  const FilterPolicy* policy_;
  Slice contents_;
  FilterIndex index_;
};

}  // namespace pipelsm
