#include "src/table/block_cache.h"

#include "src/table/block.h"

namespace pipelsm {

std::shared_ptr<Block> BlockCache::Lookup(const Slice& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key.ToString());
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  // Promote to MRU.
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->block;
}

void BlockCache::Insert(const Slice& key, std::shared_ptr<Block> block,
                        size_t charge) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string k = key.ToString();
  auto it = index_.find(k);
  if (it != index_.end()) {
    usage_ -= it->second->charge;
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{k, std::move(block), charge});
  index_[std::move(k)] = lru_.begin();
  usage_ += charge;

  while (usage_ > capacity_ && !lru_.empty()) {
    // Evict from the LRU end, but never the entry just inserted.
    auto victim = std::prev(lru_.end());
    if (victim == lru_.begin()) break;
    usage_ -= victim->charge;
    index_.erase(victim->key);
    lru_.erase(victim);
  }
}

void BlockCache::Erase(const Slice& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key.ToString());
  if (it == index_.end()) return;
  usage_ -= it->second->charge;
  lru_.erase(it->second);
  index_.erase(it);
}

}  // namespace pipelsm
