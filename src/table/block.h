// Block: the in-memory reader for BlockBuilder's format.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/table/format.h"
#include "src/table/iterator.h"

namespace pipelsm {

class Comparator;

class Block {
 public:
  // Takes ownership of contents.data if heap_allocated.
  explicit Block(const BlockContents& contents);
  ~Block();

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  size_t size() const { return size_; }
  Iterator* NewIterator(const Comparator* comparator);

 private:
  class Iter;

  uint32_t NumRestarts() const;

  const char* data_;
  size_t size_;
  uint32_t restart_offset_;  // Offset in data_ of restart array
  bool owned_;               // Block owns data_[]
};

}  // namespace pipelsm
