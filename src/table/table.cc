#include "src/table/table.h"

#include <map>
#include <mutex>
#include <string>

#include "src/read/cache.h"
#include "src/table/block.h"
#include "src/table/comparator.h"
#include "src/table/filter_block.h"
#include "src/table/filter_policy.h"
#include "src/table/format.h"
#include "src/table/two_level_iterator.h"
#include "src/util/coding.h"

namespace pipelsm {

struct Table::Rep {
  TableOptions options;
  Status status;
  std::unique_ptr<RandomAccessFile> file;
  uint64_t cache_id = 0;

  // Partitioned filter: only the top-level index lives in memory;
  // partitions are loaded on demand (through the block cache when one
  // is configured).
  bool has_filter = false;
  FilterIndex filter_index;
  BlockHandle filter_handle;

  // Cache-less fallback: with no shared block cache, loaded partitions
  // pin here for the table's lifetime (bounded by the filter block
  // size — the same footprint the old eager whole-block load had),
  // instead of re-reading the device on every probe.
  std::mutex filter_mu;
  std::map<uint32_t, std::shared_ptr<std::string>> pinned_partitions;

  BlockHandle metaindex_handle;
  std::unique_ptr<Block> index_block;
};

Table::Table(Rep* rep) : rep_(rep) {}

Table::~Table() = default;

const TableOptions& Table::options() const { return rep_->options; }

uint64_t Table::cache_id() const { return rep_->cache_id; }

Status Table::Open(const TableOptions& options,
                   std::unique_ptr<RandomAccessFile> file, uint64_t size,
                   std::unique_ptr<Table>* table) {
  table->reset();
  if (size < Footer::kEncodedLength) {
    return Status::Corruption("file is too short to be an sstable");
  }

  char footer_space[Footer::kEncodedLength];
  Slice footer_input;
  Status s = file->Read(size - Footer::kEncodedLength, Footer::kEncodedLength,
                        &footer_input, footer_space);
  if (!s.ok()) return s;

  Footer footer;
  s = footer.DecodeFrom(&footer_input);
  if (!s.ok()) return s;

  // Read the index block.
  BlockContents index_block_contents;
  s = ReadBlock(file.get(), footer.index_handle(), options.verify_checksums,
                &index_block_contents);
  if (!s.ok()) return s;

  auto* rep = new Rep;
  rep->options = options;
  rep->file = std::move(file);
  rep->metaindex_handle = footer.metaindex_handle();
  rep->index_block.reset(new Block(index_block_contents));
  rep->cache_id =
      options.block_cache != nullptr ? options.block_cache->NewId() : 0;
  table->reset(new Table(rep));
  (*table)->ReadMeta(footer);
  return Status::OK();
}

void Table::ReadMeta(const Footer& footer) {
  if (rep_->options.filter_policy == nullptr) {
    return;  // Do not need any metadata
  }

  BlockContents contents;
  if (!ReadBlock(rep_->file.get(), footer.metaindex_handle(),
                 rep_->options.verify_checksums, &contents)
           .ok()) {
    // Do not propagate errors since meta info is not needed for operation.
    return;
  }
  Block meta(contents);

  std::unique_ptr<Iterator> iter(meta.NewIterator(BytewiseComparator()));
  std::string key = "filter.";
  key.append(rep_->options.filter_policy->Name());
  iter->Seek(key);
  if (iter->Valid() && iter->key() == Slice(key)) {
    ReadFilter(iter->value());
  }
}

void Table::ReadFilter(const Slice& filter_handle_value) {
  Slice v = filter_handle_value;
  BlockHandle filter_handle;
  if (!filter_handle.DecodeFrom(&v).ok()) {
    return;
  }

  // Read only the trailing tail + top index; partitions stay on disk
  // until a probe needs them. The filter block is written uncompressed
  // (see TableBuilder::Finish), so partial raw reads are valid.
  const uint64_t block_size = filter_handle.size();
  constexpr uint64_t kTailBytes = 9;  // index offset + count + base_lg
  if (block_size < kTailBytes) return;
  char tail_space[kTailBytes];
  Slice tail;
  if (!rep_->file
           ->Read(filter_handle.offset() + block_size - kTailBytes,
                  kTailBytes, &tail, tail_space)
           .ok() ||
      tail.size() != kTailBytes) {
    return;
  }
  const uint64_t num_partitions = DecodeFixed32(tail.data() + 4);
  const uint64_t index_bytes = num_partitions * 16;
  if (index_bytes + kTailBytes > block_size) return;
  std::string index_buf;
  index_buf.resize(index_bytes + kTailBytes);
  Slice index_region;
  if (!rep_->file
           ->Read(filter_handle.offset() + block_size - kTailBytes -
                      index_bytes,
                  index_bytes + kTailBytes, &index_region, index_buf.data())
           .ok()) {
    return;
  }
  if (!rep_->filter_index.ParseTail(index_region, block_size)) return;
  rep_->filter_handle = filter_handle;
  rep_->has_filter = true;
}

// Consults the partitioned filter for `block_offset`, loading the
// covering partition through the block cache (17-byte key: cache id,
// partition file offset, 'f' tag — the tag keeps the id prefix shared
// with data blocks so one ErasePrefix drops both). Any failure returns
// true: the filter only ever skips reads it can prove useless.
bool Table::FilterKeyMayMatch(const TableReadOptions& read_options,
                              uint64_t block_offset, const Slice& key) const {
  if (!rep_->has_filter) return true;
  const uint64_t window = block_offset >> rep_->filter_index.base_lg();
  FilterPartitionInfo part;
  if (!rep_->filter_index.Lookup(window, &part)) return true;

  read::Cache* cache = rep_->options.block_cache;
  char cache_key_buffer[17];
  Slice cache_key;
  std::shared_ptr<std::string> partition;
  if (cache != nullptr) {
    EncodeFixed64(cache_key_buffer, rep_->cache_id);
    EncodeFixed64(cache_key_buffer + 8,
                  rep_->filter_handle.offset() + part.offset);
    cache_key_buffer[16] = 'f';
    cache_key = Slice(cache_key_buffer, sizeof(cache_key_buffer));
    partition = cache->LookupAs<std::string>(cache_key);
  } else {
    std::lock_guard<std::mutex> lock(rep_->filter_mu);
    auto it = rep_->pinned_partitions.find(part.offset);
    if (it != rep_->pinned_partitions.end()) partition = it->second;
  }
  if (partition == nullptr) {
    auto loaded = std::make_shared<std::string>();
    if (!ReadExtent(rep_->filter_handle.offset() + part.offset, part.size,
                    loaded.get())
             .ok()) {
      return true;
    }
    if (!FilterPartitionCrcOk(Slice(*loaded))) return true;
    partition = std::move(loaded);
    if (cache != nullptr) {
      if (read_options.fill_cache) {
        cache->Insert(cache_key, partition, partition->size());
      }
    } else {
      std::lock_guard<std::mutex> lock(rep_->filter_mu);
      rep_->pinned_partitions.emplace(part.offset, partition);
    }
  }
  return FilterPartitionKeyMayMatch(
      rep_->options.filter_policy, Slice(*partition), part.num_windows,
      static_cast<uint32_t>(window - part.first_window), key);
}

// Converts an index-block value (encoded BlockHandle) into an iterator over
// the corresponding data block, consulting the shared cache first.
Iterator* Table::ReadBlockIterator(const TableReadOptions& read_options,
                                   const Slice& index_value) const {
  read::Cache* cache = rep_->options.block_cache;
  Slice input = index_value;
  BlockHandle handle;
  Status s = handle.DecodeFrom(&input);
  if (!s.ok()) {
    return NewErrorIterator(s);
  }

  const bool verify =
      rep_->options.verify_checksums || read_options.verify_checksums;
  std::shared_ptr<Block> block;
  char cache_key_buffer[16];
  if (cache != nullptr) {
    EncodeFixed64(cache_key_buffer, rep_->cache_id);
    EncodeFixed64(cache_key_buffer + 8, handle.offset());
    Slice key(cache_key_buffer, sizeof(cache_key_buffer));
    block = cache->LookupAs<Block>(key);
    if (block == nullptr) {
      BlockContents contents;
      s = ReadBlock(rep_->file.get(), handle, verify, &contents);
      if (!s.ok()) return NewErrorIterator(s);
      block = std::make_shared<Block>(contents);
      if (contents.cachable && read_options.fill_cache) {
        cache->Insert(key, block, block->size());
      }
    }
  } else {
    BlockContents contents;
    s = ReadBlock(rep_->file.get(), handle, verify, &contents);
    if (!s.ok()) return NewErrorIterator(s);
    block = std::make_shared<Block>(contents);
  }

  Iterator* iter = block->NewIterator(rep_->options.comparator);
  // Pin the block for the iterator's lifetime.
  iter->RegisterCleanup([block]() mutable { block.reset(); });
  return iter;
}

Iterator* Table::NewIterator(const TableReadOptions& read_options) const {
  return NewTwoLevelIterator(
      rep_->index_block->NewIterator(rep_->options.comparator),
      [this, read_options](const Slice& index_value) {
        return ReadBlockIterator(read_options, index_value);
      });
}

Iterator* Table::NewIndexIterator() const {
  return rep_->index_block->NewIterator(rep_->options.comparator);
}

Status Table::ReadRaw(const BlockHandle& handle, RawBlock* out) const {
  return ReadRawBlock(rep_->file.get(), handle, out);
}

Status Table::ReadExtent(uint64_t offset, uint64_t size,
                         std::string* out) const {
  out->resize(size);
  Slice contents;
  Status s = rep_->file->Read(offset, size, &contents, out->data());
  if (!s.ok()) return s;
  if (contents.size() != size) {
    return Status::Corruption("truncated extent read");
  }
  if (contents.data() != out->data()) {
    out->assign(contents.data(), contents.size());
  }
  return Status::OK();
}

Status Table::InternalGet(
    const TableReadOptions& read_options, const Slice& k,
    const std::function<void(const Slice&, const Slice&)>& handle_result)
    const {
  Status s;
  std::unique_ptr<Iterator> iiter(
      rep_->index_block->NewIterator(rep_->options.comparator));
  iiter->Seek(k);
  if (iiter->Valid()) {
    Slice handle_value = iiter->value();
    BlockHandle handle;
    Slice hv = handle_value;
    if (rep_->has_filter && handle.DecodeFrom(&hv).ok() &&
        !FilterKeyMayMatch(read_options, handle.offset(), k)) {
      // Not found: filter says the key is definitely absent.
    } else {
      std::unique_ptr<Iterator> block_iter(
          ReadBlockIterator(read_options, handle_value));
      block_iter->Seek(k);
      if (block_iter->Valid()) {
        handle_result(block_iter->key(), block_iter->value());
      }
      s = block_iter->status();
    }
  }
  if (s.ok()) {
    s = iiter->status();
  }
  return s;
}

uint64_t Table::ApproximateOffsetOf(const Slice& key) const {
  std::unique_ptr<Iterator> index_iter(
      rep_->index_block->NewIterator(rep_->options.comparator));
  index_iter->Seek(key);
  uint64_t result;
  if (index_iter->Valid()) {
    BlockHandle handle;
    Slice input = index_iter->value();
    Status s = handle.DecodeFrom(&input);
    if (s.ok()) {
      result = handle.offset();
    } else {
      // Strange: we can't decode the block handle in the index block.
      // We'll just return the offset of the metaindex block.
      result = rep_->metaindex_handle.offset();
    }
  } else {
    // key is past the last key in the file; approximate by the metaindex
    // offset (close to the whole file size).
    result = rep_->metaindex_handle.offset();
  }
  return result;
}

}  // namespace pipelsm
