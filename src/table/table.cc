#include "src/table/table.h"

#include <string>

#include "src/table/block.h"
#include "src/table/block_cache.h"
#include "src/table/comparator.h"
#include "src/table/filter_block.h"
#include "src/table/filter_policy.h"
#include "src/table/format.h"
#include "src/table/two_level_iterator.h"
#include "src/util/coding.h"

namespace pipelsm {

struct Table::Rep {
  ~Rep() {
    delete filter;
    delete[] filter_data;
  }

  TableOptions options;
  Status status;
  std::unique_ptr<RandomAccessFile> file;
  uint64_t cache_id = 0;
  FilterBlockReader* filter = nullptr;
  const char* filter_data = nullptr;

  BlockHandle metaindex_handle;
  std::unique_ptr<Block> index_block;
};

Table::Table(Rep* rep) : rep_(rep) {}

Table::~Table() = default;

const TableOptions& Table::options() const { return rep_->options; }

Status Table::Open(const TableOptions& options,
                   std::unique_ptr<RandomAccessFile> file, uint64_t size,
                   std::unique_ptr<Table>* table) {
  table->reset();
  if (size < Footer::kEncodedLength) {
    return Status::Corruption("file is too short to be an sstable");
  }

  char footer_space[Footer::kEncodedLength];
  Slice footer_input;
  Status s = file->Read(size - Footer::kEncodedLength, Footer::kEncodedLength,
                        &footer_input, footer_space);
  if (!s.ok()) return s;

  Footer footer;
  s = footer.DecodeFrom(&footer_input);
  if (!s.ok()) return s;

  // Read the index block.
  BlockContents index_block_contents;
  s = ReadBlock(file.get(), footer.index_handle(), options.verify_checksums,
                &index_block_contents);
  if (!s.ok()) return s;

  auto* rep = new Rep;
  rep->options = options;
  rep->file = std::move(file);
  rep->metaindex_handle = footer.metaindex_handle();
  rep->index_block.reset(new Block(index_block_contents));
  rep->cache_id =
      options.block_cache != nullptr ? options.block_cache->NewId() : 0;
  table->reset(new Table(rep));
  (*table)->ReadMeta(footer);
  return Status::OK();
}

void Table::ReadMeta(const Footer& footer) {
  if (rep_->options.filter_policy == nullptr) {
    return;  // Do not need any metadata
  }

  BlockContents contents;
  if (!ReadBlock(rep_->file.get(), footer.metaindex_handle(),
                 rep_->options.verify_checksums, &contents)
           .ok()) {
    // Do not propagate errors since meta info is not needed for operation.
    return;
  }
  Block meta(contents);

  std::unique_ptr<Iterator> iter(meta.NewIterator(BytewiseComparator()));
  std::string key = "filter.";
  key.append(rep_->options.filter_policy->Name());
  iter->Seek(key);
  if (iter->Valid() && iter->key() == Slice(key)) {
    ReadFilter(iter->value());
  }
}

void Table::ReadFilter(const Slice& filter_handle_value) {
  Slice v = filter_handle_value;
  BlockHandle filter_handle;
  if (!filter_handle.DecodeFrom(&v).ok()) {
    return;
  }

  BlockContents block;
  if (!ReadBlock(rep_->file.get(), filter_handle,
                 rep_->options.verify_checksums, &block)
           .ok()) {
    return;
  }
  if (block.heap_allocated) {
    rep_->filter_data = block.data.data();  // Will need to delete later
  }
  rep_->filter = new FilterBlockReader(rep_->options.filter_policy, block.data);
}

// Converts an index-block value (encoded BlockHandle) into an iterator over
// the corresponding data block, consulting the shared cache first.
Iterator* Table::ReadBlockIterator(const TableReadOptions& read_options,
                                   const Slice& index_value) const {
  BlockCache* cache = rep_->options.block_cache;
  Slice input = index_value;
  BlockHandle handle;
  Status s = handle.DecodeFrom(&input);
  if (!s.ok()) {
    return NewErrorIterator(s);
  }

  const bool verify =
      rep_->options.verify_checksums || read_options.verify_checksums;
  std::shared_ptr<Block> block;
  char cache_key_buffer[16];
  if (cache != nullptr) {
    EncodeFixed64(cache_key_buffer, rep_->cache_id);
    EncodeFixed64(cache_key_buffer + 8, handle.offset());
    Slice key(cache_key_buffer, sizeof(cache_key_buffer));
    block = cache->Lookup(key);
    if (block == nullptr) {
      BlockContents contents;
      s = ReadBlock(rep_->file.get(), handle, verify, &contents);
      if (!s.ok()) return NewErrorIterator(s);
      block = std::make_shared<Block>(contents);
      if (contents.cachable && read_options.fill_cache) {
        cache->Insert(key, block, block->size());
      }
    }
  } else {
    BlockContents contents;
    s = ReadBlock(rep_->file.get(), handle, verify, &contents);
    if (!s.ok()) return NewErrorIterator(s);
    block = std::make_shared<Block>(contents);
  }

  Iterator* iter = block->NewIterator(rep_->options.comparator);
  // Pin the block for the iterator's lifetime.
  iter->RegisterCleanup([block]() mutable { block.reset(); });
  return iter;
}

Iterator* Table::NewIterator(const TableReadOptions& read_options) const {
  return NewTwoLevelIterator(
      rep_->index_block->NewIterator(rep_->options.comparator),
      [this, read_options](const Slice& index_value) {
        return ReadBlockIterator(read_options, index_value);
      });
}

Iterator* Table::NewIndexIterator() const {
  return rep_->index_block->NewIterator(rep_->options.comparator);
}

Status Table::ReadRaw(const BlockHandle& handle, RawBlock* out) const {
  return ReadRawBlock(rep_->file.get(), handle, out);
}

Status Table::ReadExtent(uint64_t offset, uint64_t size,
                         std::string* out) const {
  out->resize(size);
  Slice contents;
  Status s = rep_->file->Read(offset, size, &contents, out->data());
  if (!s.ok()) return s;
  if (contents.size() != size) {
    return Status::Corruption("truncated extent read");
  }
  if (contents.data() != out->data()) {
    out->assign(contents.data(), contents.size());
  }
  return Status::OK();
}

Status Table::InternalGet(
    const TableReadOptions& read_options, const Slice& k,
    const std::function<void(const Slice&, const Slice&)>& handle_result)
    const {
  Status s;
  std::unique_ptr<Iterator> iiter(
      rep_->index_block->NewIterator(rep_->options.comparator));
  iiter->Seek(k);
  if (iiter->Valid()) {
    Slice handle_value = iiter->value();
    FilterBlockReader* filter = rep_->filter;
    BlockHandle handle;
    Slice hv = handle_value;
    if (filter != nullptr && handle.DecodeFrom(&hv).ok() &&
        !filter->KeyMayMatch(handle.offset(), k)) {
      // Not found: filter says the key is definitely absent.
    } else {
      std::unique_ptr<Iterator> block_iter(
          ReadBlockIterator(read_options, handle_value));
      block_iter->Seek(k);
      if (block_iter->Valid()) {
        handle_result(block_iter->key(), block_iter->value());
      }
      s = block_iter->status();
    }
  }
  if (s.ok()) {
    s = iiter->status();
  }
  return s;
}

uint64_t Table::ApproximateOffsetOf(const Slice& key) const {
  std::unique_ptr<Iterator> index_iter(
      rep_->index_block->NewIterator(rep_->options.comparator));
  index_iter->Seek(key);
  uint64_t result;
  if (index_iter->Valid()) {
    BlockHandle handle;
    Slice input = index_iter->value();
    Status s = handle.DecodeFrom(&input);
    if (s.ok()) {
      result = handle.offset();
    } else {
      // Strange: we can't decode the block handle in the index block.
      // We'll just return the offset of the metaindex block.
      result = rep_->metaindex_handle.offset();
    }
  } else {
    // key is past the last key in the file; approximate by the metaindex
    // offset (close to the whole file size).
    result = rep_->metaindex_handle.offset();
  }
  return result;
}

}  // namespace pipelsm
