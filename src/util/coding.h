// Little-endian fixed-width and varint encodings shared by the WAL, SSTable,
// memtable and manifest formats. Matches the LevelDB wire conventions so the
// on-disk layouts in this repo are directly comparable to LevelDB's.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "src/util/slice.h"

namespace pipelsm {

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

// Parsers advance *input past the consumed bytes; return false on underflow
// or malformed varints.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

// Low-level variants used by the table format.
char* EncodeVarint32(char* dst, uint32_t value);
char* EncodeVarint64(char* dst, uint64_t value);
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);
int VarintLength(uint64_t v);

inline void EncodeFixed32(char* dst, uint32_t value) {
  std::memcpy(dst, &value, sizeof(value));  // little-endian hosts only
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

inline uint32_t DecodeFixed32(const char* ptr) {
  uint32_t result;
  std::memcpy(&result, ptr, sizeof(result));
  return result;
}

inline uint64_t DecodeFixed64(const char* ptr) {
  uint64_t result;
  std::memcpy(&result, ptr, sizeof(result));
  return result;
}

const char* GetVarint32PtrFallback(const char* p, const char* limit,
                                   uint32_t* value);

inline const char* GetVarint32Ptr(const char* p, const char* limit,
                                  uint32_t* value) {
  if (p < limit) {
    uint32_t result = static_cast<uint8_t>(*p);
    if ((result & 0x80) == 0) {
      *value = result;
      return p + 1;
    }
  }
  return GetVarint32PtrFallback(p, limit, value);
}

}  // namespace pipelsm
