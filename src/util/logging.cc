#include "src/util/logging.h"

#include <cstdarg>
#include <cstdio>

#include <atomic>
#include <limits>

namespace pipelsm {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void Logf(LogLevel level, const char* format, ...) {
  if (static_cast<int>(level) <
      g_log_level.load(std::memory_order_relaxed)) {
    return;
  }
  static const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  char buf[2048];
  va_list ap;
  va_start(ap, format);
  std::vsnprintf(buf, sizeof(buf), format, ap);
  va_end(ap);
  std::fprintf(stderr, "[pipelsm %s] %s\n",
               kNames[static_cast<int>(level)], buf);
}

void AppendNumberTo(std::string* str, uint64_t num) {
  char buf[30];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(num));
  str->append(buf);
}

void AppendEscapedStringTo(std::string* str, const Slice& value) {
  for (size_t i = 0; i < value.size(); i++) {
    char c = value[i];
    if (c >= ' ' && c <= '~') {
      str->push_back(c);
    } else {
      char buf[10];
      std::snprintf(buf, sizeof(buf), "\\x%02x",
                    static_cast<unsigned int>(c) & 0xff);
      str->append(buf);
    }
  }
}

std::string NumberToString(uint64_t num) {
  std::string r;
  AppendNumberTo(&r, num);
  return r;
}

std::string EscapeString(const Slice& value) {
  std::string r;
  AppendEscapedStringTo(&r, value);
  return r;
}

bool ConsumeDecimalNumber(Slice* in, uint64_t* val) {
  constexpr uint64_t kMaxUint64 = std::numeric_limits<uint64_t>::max();
  constexpr char kLastDigitOfMaxUint64 = '0' + (kMaxUint64 % 10);

  uint64_t value = 0;
  const uint8_t* start = reinterpret_cast<const uint8_t*>(in->data());
  const uint8_t* end = start + in->size();
  const uint8_t* current = start;
  for (; current != end; ++current) {
    const uint8_t ch = *current;
    if (ch < '0' || ch > '9') break;
    // Overflow check.
    if (value > kMaxUint64 / 10 ||
        (value == kMaxUint64 / 10 &&
         ch > static_cast<uint8_t>(kLastDigitOfMaxUint64))) {
      return false;
    }
    value = (value * 10) + (ch - '0');
  }

  *val = value;
  const size_t digits_consumed = current - start;
  in->remove_prefix(digits_consumed);
  return digits_consumed != 0;
}

}  // namespace pipelsm
