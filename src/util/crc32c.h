// CRC32C (Castagnoli) — used for S2 (CHECKSUM) and S6 (RE-CHECKSUM) of the
// compaction procedure, for WAL records and for SSTable block trailers.
//
// Software slice-by-8 implementation; masked variant stored on disk so a CRC
// over data that itself embeds CRCs stays well-distributed (same rationale
// and constant as LevelDB).
#pragma once

#include <cstddef>
#include <cstdint>

namespace pipelsm::crc32c {

// Returns the crc32c of concat(A, data[0,n-1]) where init_crc is the
// crc32c of A.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

// crc32c of data[0,n-1].
inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

static const uint32_t kMaskDelta = 0xa282ead8ul;

// Masked CRC suitable for storing alongside the data it covers.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

inline uint32_t Unmask(uint32_t masked_crc) {
  uint32_t rot = masked_crc - kMaskDelta;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace pipelsm::crc32c
