#include "src/util/thread_pool.h"

namespace pipelsm {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; i++) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    tasks_.push_back(std::move(task));
  }
  work_available_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        // shutdown_ is set and the queue is drained.
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
      active_++;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_--;
      if (tasks_.empty() && active_ == 0) {
        all_idle_.notify_all();
      }
    }
  }
}

}  // namespace pipelsm
