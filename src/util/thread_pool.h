// ThreadPool: fixed-size worker pool used by the C-PPCP compute stage and by
// the DB's background compaction scheduler.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pipelsm {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue a task. Returns false if the pool is shutting down.
  bool Submit(std::function<void()> task);

  // Blocks until every queued and running task has finished.
  void Wait();

  // Stops accepting tasks, drains the queue, joins workers.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> threads_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace pipelsm
