// BoundedQueue<T>: blocking MPMC queue used between pipeline stages.
//
// The paper's PCP creates "a queue for data communication between the
// adjacent stages"; bounding the depth provides backpressure so the slowest
// stage governs the pipeline's steady-state bandwidth (Eq. 2 behaviour) and
// memory stays proportional to depth × sub-task size.
//
// Close() wakes all waiters: producers then fail Push, consumers drain the
// remaining items and then fail Pop. T must be movable.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace pipelsm {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks until there is room or the queue is closed.
  // Returns false (and drops the item) if closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // Non-blocking pop; returns nullopt immediately when empty.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // After Close(), Push fails and Pop drains then fails.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace pipelsm
