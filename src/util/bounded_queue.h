// BoundedQueue<T>: blocking MPMC queue used between pipeline stages.
//
// The paper's PCP creates "a queue for data communication between the
// adjacent stages"; bounding the depth provides backpressure so the slowest
// stage governs the pipeline's steady-state bandwidth (Eq. 2 behaviour) and
// memory stays proportional to depth × sub-task size.
//
// Close() wakes all waiters: producers then fail Push, consumers drain the
// remaining items and then fail Pop. T must be movable.
//
// Stall accounting: the queue records how long producers sat blocked in
// Push (backpressure from the downstream stage) and consumers in Pop
// (starvation by the upstream stage), plus the depth high-watermark.
// Nonzero push-stall time on a queue means the stage *after* it is the
// bottleneck; nonzero pop-stall time indicts the stage *before* it — the
// measured form of the paper's Eq. 2 max{} argument. Snapshot via stats().
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "src/util/stopwatch.h"

namespace pipelsm {

template <typename T>
class BoundedQueue {
 public:
  // All counters are cumulative since construction.
  struct Stats {
    uint64_t pushes = 0;            // items accepted
    uint64_t pops = 0;              // items handed out (Pop + TryPop)
    uint64_t push_stalls = 0;       // Push calls that had to block
    uint64_t pop_stalls = 0;        // Pop calls that had to block
    uint64_t push_stall_nanos = 0;  // total time producers sat blocked
    uint64_t pop_stall_nanos = 0;   // total time consumers sat blocked
    size_t depth_highwater = 0;     // max items ever queued at once
  };

  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks until there is room or the queue is closed. Returns true when
  // the item was enqueued. If the queue is (or becomes) closed, returns
  // false and `item` is NOT consumed — it still holds its value, so the
  // caller decides whether to reclaim or discard it; nothing is ever
  // silently dropped inside the queue.
  bool Push(T&& item) {
    std::unique_lock<std::mutex> lock(mu_);
    WaitCounted(lock, not_full_, &stats_.push_stalls,
                &stats_.push_stall_nanos,
                [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    stats_.pushes++;
    stats_.depth_highwater = std::max(stats_.depth_highwater, items_.size());
    not_empty_.notify_one();
    return true;
  }

  bool Push(const T& item) {
    T copy(item);
    return Push(std::move(copy));
  }

  // Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    WaitCounted(lock, not_empty_, &stats_.pop_stalls, &stats_.pop_stall_nanos,
                [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    stats_.pops++;
    not_full_.notify_one();
    return item;
  }

  // Non-blocking pop; returns nullopt immediately when empty.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    stats_.pops++;
    not_full_.notify_one();
    return item;
  }

  // After Close(), Push fails and Pop drains then fails.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  // cv.wait(pred) that charges blocked time to *stall_nanos. The clock
  // only starts when the predicate actually fails, so the fast path costs
  // one predicate check, same as before.
  template <typename Pred>
  void WaitCounted(std::unique_lock<std::mutex>& lock,
                   std::condition_variable& cv, uint64_t* stalls,
                   uint64_t* stall_nanos, Pred pred) {
    if (pred()) return;
    ++*stalls;
    Stopwatch sw;
    cv.wait(lock, pred);
    *stall_nanos += sw.ElapsedNanos();
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  Stats stats_;
  bool closed_ = false;
};

}  // namespace pipelsm
