// Minimal leveled logger plus number/escape helpers shared across modules.
#pragma once

#include <cstdint>
#include <string>

#include "src/util/slice.h"

namespace pipelsm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// printf-style logging to stderr with a level prefix.
void Logf(LogLevel level, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

#define PIPELSM_LOG_DEBUG(...) \
  ::pipelsm::Logf(::pipelsm::LogLevel::kDebug, __VA_ARGS__)
#define PIPELSM_LOG_INFO(...) \
  ::pipelsm::Logf(::pipelsm::LogLevel::kInfo, __VA_ARGS__)
#define PIPELSM_LOG_WARN(...) \
  ::pipelsm::Logf(::pipelsm::LogLevel::kWarn, __VA_ARGS__)
#define PIPELSM_LOG_ERROR(...) \
  ::pipelsm::Logf(::pipelsm::LogLevel::kError, __VA_ARGS__)

// Append a human-readable printout of "num" to *str.
void AppendNumberTo(std::string* str, uint64_t num);

// Append a human-readable version of "value" to *str, escaping any
// non-printable characters.
void AppendEscapedStringTo(std::string* str, const Slice& value);

std::string NumberToString(uint64_t num);
std::string EscapeString(const Slice& value);

// Parse a decimal number from *in into *val; consumes the digits.
bool ConsumeDecimalNumber(Slice* in, uint64_t* val);

}  // namespace pipelsm
