#include "src/util/histogram.h"

#include <cmath>
#include <cstdio>

namespace pipelsm {

namespace {
// Geometric bucket limits: starts at 1, grows ~20% per bucket, always
// advancing by at least 1. 154 buckets covers ~[1, 1e12].
struct BucketTable {
  double limits[Histogram::kNumBuckets_];
  BucketTable() {
    double v = 1;
    for (int i = 0; i < Histogram::kNumBuckets_; i++) {
      limits[i] = v;
      double next = v * 1.2;
      if (next < v + 1) next = v + 1;
      v = next;
    }
  }
};
const BucketTable kTable;
}  // namespace

void Histogram::Clear() {
  min_ = kTable.limits[kNumBuckets_ - 1];
  max_ = 0;
  num_ = 0;
  sum_ = 0;
  sum_squares_ = 0;
  for (int i = 0; i < kNumBuckets_; i++) {
    buckets_[i] = 0;
  }
}

void Histogram::Add(double value) {
  int b = 0;
  while (b < kNumBuckets_ - 1 && kTable.limits[b] <= value) {
    b++;
  }
  buckets_[b] += 1.0;
  if (min_ > value) min_ = value;
  if (max_ < value) max_ = value;
  num_++;
  sum_ += value;
  sum_squares_ += (value * value);
}

void Histogram::Merge(const Histogram& other) {
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  num_ += other.num_;
  sum_ += other.sum_;
  sum_squares_ += other.sum_squares_;
  for (int b = 0; b < kNumBuckets_; b++) {
    buckets_[b] += other.buckets_[b];
  }
}

double Histogram::Median() const { return Percentile(50.0); }

double Histogram::Percentile(double p) const {
  // Empty: every bucket matches threshold 0 and the result would clamp
  // up to the min_ sentinel (the top bucket limit, ~1e12). Report 0.
  if (num_ == 0.0) return 0;
  // One sample: interpolation inside its bucket is meaningless spread;
  // the only defensible percentile is the sample itself.
  if (num_ == 1.0) return max_;
  double threshold = num_ * (p / 100.0);
  double sum = 0;
  for (int b = 0; b < kNumBuckets_; b++) {
    sum += buckets_[b];
    if (sum >= threshold) {
      // Linear interpolation within this bucket.
      double left_point = (b == 0) ? 0 : kTable.limits[b - 1];
      double right_point = kTable.limits[b];
      double left_sum = sum - buckets_[b];
      double right_sum = sum;
      double pos = 0;
      double right_left = right_sum - left_sum;
      if (right_left > 0) {
        pos = (threshold - left_sum) / right_left;
      }
      double r = left_point + (right_point - left_point) * pos;
      if (r < min_) r = min_;
      if (r > max_) r = max_;
      return r;
    }
  }
  return max_;
}

double Histogram::Average() const {
  if (num_ == 0.0) return 0;
  return sum_ / num_;
}

double Histogram::StandardDeviation() const {
  if (num_ == 0.0) return 0;
  double variance = (sum_squares_ * num_ - sum_ * sum_) / (num_ * num_);
  return std::sqrt(variance > 0 ? variance : 0);
}

void Histogram::SummaryToJson(std::string* out) const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "{\"count\":%.0f,\"avg\":%.3f,\"p50\":%.3f,\"p95\":%.3f,"
                "\"p99\":%.3f,\"max\":%.3f}",
                num_, Average(), Median(), Percentile(95), Percentile(99),
                num_ > 0 ? max_ : 0.0);
  out->append(buf);
}

std::vector<std::pair<double, uint64_t>> Histogram::NonzeroBuckets() const {
  std::vector<std::pair<double, uint64_t>> out;
  for (int b = 0; b < kNumBuckets_; b++) {
    if (buckets_[b] > 0) {
      out.emplace_back(kTable.limits[b], static_cast<uint64_t>(buckets_[b]));
    }
  }
  return out;
}

std::string Histogram::ToString() const {
  std::string r;
  char buf[200];
  std::snprintf(buf, sizeof(buf), "Count: %.0f  Average: %.4f  StdDev: %.2f\n",
                num_, Average(), StandardDeviation());
  r.append(buf);
  std::snprintf(buf, sizeof(buf),
                "Min: %.4f  Median: %.4f  P95: %.4f  P99: %.4f  Max: %.4f\n",
                (num_ == 0.0 ? 0.0 : min_), Median(), Percentile(95),
                Percentile(99), max_);
  r.append(buf);
  return r;
}

}  // namespace pipelsm
