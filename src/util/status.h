// Status: result of an operation that may fail.
//
// The OK state is represented by a null pointer so the success path costs a
// single pointer test and no allocation. Error states carry a code and a
// message in a heap-allocated buffer.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>

#include "src/util/slice.h"

namespace pipelsm {

class Status {
 public:
  Status() noexcept : state_(nullptr) {}
  ~Status() { delete[] state_; }

  Status(const Status& rhs) : state_(CopyState(rhs.state_)) {}
  Status& operator=(const Status& rhs) {
    if (state_ != rhs.state_) {
      delete[] state_;
      state_ = CopyState(rhs.state_);
    }
    return *this;
  }

  Status(Status&& rhs) noexcept : state_(rhs.state_) { rhs.state_ = nullptr; }
  Status& operator=(Status&& rhs) noexcept {
    std::swap(state_, rhs.state_);
    return *this;
  }

  static Status OK() { return Status(); }
  static Status NotFound(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kNotFound, msg, msg2);
  }
  static Status Corruption(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kCorruption, msg, msg2);
  }
  static Status NotSupported(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kNotSupported, msg, msg2);
  }
  static Status InvalidArgument(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kInvalidArgument, msg, msg2);
  }
  static Status IOError(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kIOError, msg, msg2);
  }
  static Status Busy(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kBusy, msg, msg2);
  }

  bool ok() const { return state_ == nullptr; }
  bool IsNotFound() const { return code() == kNotFound; }
  bool IsCorruption() const { return code() == kCorruption; }
  bool IsIOError() const { return code() == kIOError; }
  bool IsNotSupported() const { return code() == kNotSupported; }
  bool IsInvalidArgument() const { return code() == kInvalidArgument; }
  bool IsBusy() const { return code() == kBusy; }

  std::string ToString() const;

 private:
  enum Code : uint8_t {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kNotSupported = 3,
    kInvalidArgument = 4,
    kIOError = 5,
    kBusy = 6,
  };

  Status(Code code, const Slice& msg, const Slice& msg2);

  Code code() const {
    return (state_ == nullptr) ? kOk : static_cast<Code>(state_[4]);
  }

  static const char* CopyState(const char* s);

  // OK status has a null state_.  Otherwise, state_ is a new[] array with:
  //    state_[0..3] == length of message
  //    state_[4]    == code
  //    state_[5..]  == message
  const char* state_;
};

}  // namespace pipelsm
