// Stopwatch + StepProfile: per-step timing for the seven compaction steps.
//
// Every compaction executor fills a StepProfile with the wall time and byte
// volume of S1..S7 so the breakdown benches (Figs 5/8/9) and the analytic
// model (Eqs 1-7) run off the same measurements.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

namespace pipelsm {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Elapsed time in nanoseconds since construction or last Restart().
  uint64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedSeconds() const { return ElapsedNanos() * 1e-9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// The paper's seven compaction steps (Section II-A).
enum CompactionStep : int {
  kStepRead = 0,        // S1
  kStepChecksum = 1,    // S2
  kStepDecompress = 2,  // S3
  kStepSort = 3,        // S4 (merge)
  kStepCompress = 4,    // S5
  kStepRechecksum = 5,  // S6
  kStepWrite = 6,       // S7
  kNumSteps = 7,
};

const char* CompactionStepName(CompactionStep step);

// Accumulated per-step cost over one or more compactions. Not thread-safe;
// parallel executors accumulate into per-thread profiles and Merge().
struct StepProfile {
  std::array<uint64_t, kNumSteps> nanos{};  // wall time per step
  std::array<uint64_t, kNumSteps> bytes{};  // bytes processed per step
  uint64_t wall_nanos = 0;                  // end-to-end compaction wall time
  uint64_t input_bytes = 0;                 // raw bytes consumed (pre-merge)
  uint64_t output_bytes = 0;                // raw bytes produced
  uint64_t subtasks = 0;

  void AddStep(CompactionStep s, uint64_t ns, uint64_t b) {
    nanos[s] += ns;
    bytes[s] += b;
  }

  void Merge(const StepProfile& o) {
    for (int i = 0; i < kNumSteps; i++) {
      nanos[i] += o.nanos[i];
      bytes[i] += o.bytes[i];
    }
    wall_nanos += o.wall_nanos;
    input_bytes += o.input_bytes;
    output_bytes += o.output_bytes;
    subtasks += o.subtasks;
  }

  // Sum over CPU steps S2..S6 (everything except READ and WRITE).
  uint64_t ComputeNanos() const {
    return nanos[kStepChecksum] + nanos[kStepDecompress] + nanos[kStepSort] +
           nanos[kStepCompress] + nanos[kStepRechecksum];
  }

  uint64_t IoNanos() const { return nanos[kStepRead] + nanos[kStepWrite]; }

  uint64_t TotalStepNanos() const { return ComputeNanos() + IoNanos(); }

  // Compaction bandwidth in bytes/sec over total step time (SCP view).
  double SequentialBandwidth() const;

  // Compaction bandwidth over actual wall time (what a pipelined executor
  // achieves).
  double WallBandwidth() const;

  std::string ToString() const;
};

}  // namespace pipelsm
