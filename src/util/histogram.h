// Histogram: latency/throughput distribution with exponential buckets,
// used by the workload driver and benches to report median/percentiles.
#pragma once

#include <cstdint>
#include <string>

namespace pipelsm {

class Histogram {
 public:
  static constexpr int kNumBuckets_ = 154;

  Histogram() { Clear(); }

  void Clear();
  void Add(double value);
  void Merge(const Histogram& other);

  double Median() const;
  double Percentile(double p) const;
  double Average() const;
  double StandardDeviation() const;
  double Min() const { return min_; }
  double Max() const { return max_; }
  double Num() const { return num_; }
  std::string ToString() const;

 private:
  double min_;
  double max_;
  double num_;
  double sum_;
  double sum_squares_;
  double buckets_[kNumBuckets_];
};

}  // namespace pipelsm
