// Histogram: latency/throughput distribution with exponential buckets,
// used by the workload driver, the benches and the metrics registry to
// report median/percentiles — one implementation, so every percentile
// printed anywhere in the system agrees.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pipelsm {

class Histogram {
 public:
  static constexpr int kNumBuckets_ = 154;

  Histogram() { Clear(); }

  void Clear();
  void Add(double value);
  void Merge(const Histogram& other);

  double Median() const;
  double Percentile(double p) const;
  double Average() const;
  double StandardDeviation() const;
  double Min() const { return min_; }
  double Max() const { return max_; }
  double Num() const { return num_; }
  double Sum() const { return sum_; }
  std::string ToString() const;

  // Appends the summary object the metrics registry exports for every
  // histogram instrument (the `pipelsm.metrics` payload format):
  //   {"count":N,"avg":A,"p50":..,"p95":..,"p99":..,"max":M}
  void SummaryToJson(std::string* out) const;

  // The populated buckets as (inclusive upper limit, count) pairs, in
  // ascending order — the raw distribution for exporters that want more
  // than the summary percentiles.
  std::vector<std::pair<double, uint64_t>> NonzeroBuckets() const;

 private:
  double min_;
  double max_;
  double num_;
  double sum_;
  double sum_squares_;
  double buckets_[kNumBuckets_];
};

}  // namespace pipelsm
