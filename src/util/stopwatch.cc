#include "src/util/stopwatch.h"

#include <cstdio>

namespace pipelsm {

const char* CompactionStepName(CompactionStep step) {
  switch (step) {
    case kStepRead:
      return "S1.read";
    case kStepChecksum:
      return "S2.checksum";
    case kStepDecompress:
      return "S3.decompress";
    case kStepSort:
      return "S4.sort";
    case kStepCompress:
      return "S5.compress";
    case kStepRechecksum:
      return "S6.re-checksum";
    case kStepWrite:
      return "S7.write";
    default:
      return "unknown";
  }
}

double StepProfile::SequentialBandwidth() const {
  const uint64_t total = TotalStepNanos();
  if (total == 0) return 0.0;
  return static_cast<double>(input_bytes) / (total * 1e-9);
}

double StepProfile::WallBandwidth() const {
  if (wall_nanos == 0) return 0.0;
  return static_cast<double>(input_bytes) / (wall_nanos * 1e-9);
}

std::string StepProfile::ToString() const {
  std::string out;
  char buf[256];
  const double total_ms = TotalStepNanos() * 1e-6;
  for (int i = 0; i < kNumSteps; i++) {
    const double ms = nanos[i] * 1e-6;
    const double pct = total_ms > 0 ? 100.0 * ms / total_ms : 0.0;
    std::snprintf(buf, sizeof(buf), "  %-14s %10.3f ms  (%5.1f%%)  %8.2f MB\n",
                  CompactionStepName(static_cast<CompactionStep>(i)), ms, pct,
                  bytes[i] / (1024.0 * 1024.0));
    out.append(buf);
  }
  std::snprintf(buf, sizeof(buf),
                "  total step time %.3f ms, wall %.3f ms, in %.2f MB, out "
                "%.2f MB, %llu subtasks\n",
                total_ms, wall_nanos * 1e-6, input_bytes / (1024.0 * 1024.0),
                output_bytes / (1024.0 * 1024.0),
                static_cast<unsigned long long>(subtasks));
  out.append(buf);
  return out;
}

}  // namespace pipelsm
