// Deterministic PRNGs for tests and workload generation.
//
// Random: LevelDB's Lehmer LCG — fast, tiny state, good enough for skiplist
// heights and workload shaping where reproducibility matters more than
// statistical quality. Xoroshiro128pp: larger-period generator for value
// payload synthesis.
#pragma once

#include <cstdint>

namespace pipelsm {

class Random {
 public:
  explicit Random(uint32_t s) : seed_(s & 0x7fffffffu) {
    // Avoid bad seeds (0 and 2^31-1 are fixed points of the recurrence).
    if (seed_ == 0 || seed_ == 2147483647L) {
      seed_ = 1;
    }
  }

  uint32_t Next() {
    static const uint32_t M = 2147483647L;  // 2^31-1
    static const uint64_t A = 16807;        // bits 14, 8, 7, 5, 2, 1, 0
    // seed_ = (seed_ * A) % M, computed without overflow in 64 bits.
    uint64_t product = seed_ * A;
    seed_ = static_cast<uint32_t>((product >> 31) + (product & M));
    if (seed_ > M) {
      seed_ -= M;
    }
    return seed_;
  }

  // Returns a uniformly distributed value in the range [0..n-1]. n > 0.
  uint32_t Uniform(int n) { return Next() % n; }

  // Returns true with probability approximately 1/n.
  bool OneIn(int n) { return (Next() % n) == 0; }

  // Skewed: pick base in [0, max_log] uniformly, then return a value in
  // [0, 2^base - 1]. Favors small numbers exponentially.
  uint32_t Skewed(int max_log) { return Uniform(1 << Uniform(max_log + 1)); }

 private:
  uint32_t seed_;
};

class Xoroshiro128pp {
 public:
  explicit Xoroshiro128pp(uint64_t seed) {
    // SplitMix64 seeding.
    auto next = [&seed]() {
      uint64_t z = (seed += 0x9e3779b97f4a7c15ULL);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    s_[0] = next();
    s_[1] = next();
    if (s_[0] == 0 && s_[1] == 0) s_[0] = 1;
  }

  uint64_t Next() {
    const uint64_t s0 = s_[0];
    uint64_t s1 = s_[1];
    const uint64_t result = Rotl(s0 + s1, 17) + s0;
    s1 ^= s0;
    s_[0] = Rotl(s0, 49) ^ s1 ^ (s1 << 21);
    s_[1] = Rotl(s1, 28);
    return result;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[2];
};

}  // namespace pipelsm
