#include "src/util/crc32c.h"

#include <array>

namespace pipelsm::crc32c {

namespace {

constexpr uint32_t kPoly = 0x82f63b78u;  // reflected CRC32C polynomial

struct Tables {
  uint32_t t[8][256];
  Tables() {
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t crc = i;
      for (int j = 0; j < 8; j++) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; i++) {
      for (int k = 1; k < 8; k++) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xff];
      }
    }
  }
};

const Tables kTables;

inline uint32_t LoadLE32(const char* p) {
  uint32_t v;
  __builtin_memcpy(&v, p, 4);
  return v;
}

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  const auto& t = kTables.t;
  uint32_t crc = init_crc ^ 0xffffffffu;

  // Align to 8 bytes.
  while (n > 0 && (reinterpret_cast<uintptr_t>(data) & 7) != 0) {
    crc = t[0][(crc ^ static_cast<uint8_t>(*data)) & 0xff] ^ (crc >> 8);
    data++;
    n--;
  }

  // Slice-by-8 main loop.
  while (n >= 8) {
    uint32_t lo = LoadLE32(data) ^ crc;
    uint32_t hi = LoadLE32(data + 4);
    crc = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^ t[5][(lo >> 16) & 0xff] ^
          t[4][(lo >> 24) & 0xff] ^ t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
          t[1][(hi >> 16) & 0xff] ^ t[0][(hi >> 24) & 0xff];
    data += 8;
    n -= 8;
  }

  while (n > 0) {
    crc = t[0][(crc ^ static_cast<uint8_t>(*data)) & 0xff] ^ (crc >> 8);
    data++;
    n--;
  }
  return crc ^ 0xffffffffu;
}

}  // namespace pipelsm::crc32c
