// Arena: bump allocator for memtable nodes and keys.
//
// Allocations live until the arena is destroyed; there is no per-object
// free. AllocateAligned is safe for objects containing atomics. MemoryUsage
// is approximate and may be read concurrently with allocations.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pipelsm {

class Arena {
 public:
  Arena();
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns a pointer to a newly allocated memory block of `bytes` bytes.
  char* Allocate(size_t bytes);

  // Allocate with the normal alignment guarantees provided by malloc.
  char* AllocateAligned(size_t bytes);

  // Estimate of the total memory used by the arena (blocks + bookkeeping).
  size_t MemoryUsage() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  char* alloc_ptr_;
  size_t alloc_bytes_remaining_;
  std::vector<char*> blocks_;
  std::atomic<size_t> memory_usage_;
};

inline char* Arena::Allocate(size_t bytes) {
  // 0-byte allocations would be ambiguous; disallow them.
  if (bytes <= alloc_bytes_remaining_ && bytes > 0) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

}  // namespace pipelsm
