// Workload driver: runs insert-only (and read) workloads against a DB and
// reports the paper's system-level metrics — IOPS (operations/second,
// Figs 10/12 (a)(d)), write-stall time, and the DB's aggregate compaction
// profile (compaction bandwidth, Figs 10/12 (b)(e)).
#pragma once

#include <cstdint>
#include <string>

#include "src/db/db.h"
#include "src/util/histogram.h"
#include "src/workload/generator.h"

namespace pipelsm {

struct FillResult {
  uint64_t entries = 0;
  double seconds = 0;
  double ops_per_sec = 0;        // the paper's "IOPS"
  Histogram latency_micros;      // per-op latency distribution
  CompactionMetrics compaction;  // DB compaction counters at finish
  // Compaction bandwidth (bytes of compaction input / compaction wall
  // time). Zero if no major compaction ran.
  double compaction_bandwidth = 0;
};

struct FillOptions {
  uint64_t num_entries = 100000;
  size_t key_size = 16;     // paper §IV-A
  size_t value_size = 100;  // paper §IV-A
  KeyOrder order = KeyOrder::kRandom;
  uint32_t seed = 301;
  bool wait_for_compactions = true;  // drain before measuring bandwidth
  uint64_t batch_size = 1;           // entries per WriteBatch
};

// Inserts `num_entries` key-value pairs and gathers metrics.
Status RunFill(DB* db, const FillOptions& options, FillResult* result);

// Reads back `num_reads` random keys from a previous fill; returns the
// achieved ops/sec and verifies values (returns Corruption on mismatch).
Status RunReadCheck(DB* db, const FillOptions& fill, uint64_t num_reads,
                    double* ops_per_sec);

}  // namespace pipelsm
