#include "src/workload/table_gen.h"

#include <algorithm>

#include "src/table/table_builder.h"

namespace pipelsm {

namespace {

Status OpenTable(Env* env, const TableOptions& topt, const std::string& fname,
                 std::shared_ptr<Table>* out, uint64_t* size_out) {
  uint64_t size = 0;
  Status s = env->GetFileSize(fname, &size);
  if (!s.ok()) return s;
  std::unique_ptr<RandomAccessFile> file;
  s = env->NewRandomAccessFile(fname, &file);
  if (!s.ok()) return s;
  std::unique_ptr<Table> table;
  s = Table::Open(topt, std::move(file), size, &table);
  if (!s.ok()) return s;
  out->reset(table.release());
  *size_out = size;
  return Status::OK();
}

}  // namespace

Status GenerateCompactionInputs(const TableGenOptions& options,
                                CompactionInputs* out) {
  out->tables.clear();
  out->total_bytes = 0;
  out->total_entries = 0;
  if (options.env == nullptr || options.icmp == nullptr) {
    return Status::InvalidArgument("table_gen: env and icmp are required");
  }
  Env* env = options.env;
  env->CreateDir(options.dir);

  TableOptions topt;
  topt.comparator = options.icmp;
  topt.block_size = options.block_size;
  topt.block_restart_interval = options.block_restart_interval;
  topt.compression = options.compression;

  const uint64_t entry_bytes = options.key_size + options.value_size;
  const uint64_t lower_count =
      std::max<uint64_t>(1, options.lower_bytes / entry_bytes);
  const uint64_t upper_count =
      std::max<uint64_t>(1, options.upper_bytes / entry_bytes);

  WorkloadGenerator gen(lower_count, options.key_size, options.value_size,
                        KeyOrder::kSequential, options.seed);

  int file_id = 0;
  auto build = [&](uint64_t first, uint64_t last_exclusive,
                   SequenceNumber base_seq, uint64_t stride) -> Status {
    const std::string fname =
        options.dir + "/gen-" + std::to_string(file_id++) + ".pst";
    std::unique_ptr<WritableFile> file;
    Status s = env->NewWritableFile(fname, &file);
    if (!s.ok()) return s;
    TableBuilder builder(topt, file.get());
    for (uint64_t i = first; i < last_exclusive; i += stride) {
      std::string ikey;
      AppendInternalKey(
          &ikey, ParsedInternalKey(gen.Key(i), base_seq + i, kTypeValue));
      builder.Add(ikey, gen.Value(i));
      out->total_entries++;
    }
    s = builder.Finish();
    if (!s.ok()) return s;
    s = file->Close();
    if (!s.ok()) return s;

    std::shared_ptr<Table> table;
    uint64_t size = 0;
    s = OpenTable(env, topt, fname, &table, &size);
    if (!s.ok()) return s;
    out->tables.push_back(std::move(table));
    out->total_bytes += size;
    return Status::OK();
  };

  // Upper component: every other key of the shared space, newer sequence
  // numbers (they shadow the lower versions on merge).
  const uint64_t stride = std::max<uint64_t>(1, lower_count / upper_count);
  Status s = build(0, lower_count, /*base_seq=*/lower_count + 1, stride);
  if (!s.ok()) return s;

  // Lower component: the full key space, split into contiguous files.
  const int lower_tables = std::max(1, options.lower_tables);
  const uint64_t per_table =
      (lower_count + lower_tables - 1) / lower_tables;
  for (int t = 0; t < lower_tables; t++) {
    const uint64_t first = t * per_table;
    const uint64_t last = std::min<uint64_t>(lower_count, first + per_table);
    if (first >= last) break;
    s = build(first, last, /*base_seq=*/1, /*stride=*/1);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status CountingSink::NewOutputFile(uint64_t* file_number,
                                   std::unique_ptr<WritableFile>* file) {
  env_->CreateDir(dir_);
  *file_number = next_number_++;
  const std::string fname =
      dir_ + "/out-" + std::to_string(*file_number) + ".pst";
  return env_->NewWritableFile(fname, file);
}

void CountingSink::OutputFinished(const OutputMeta& meta) {
  outputs_.push_back(meta);
  total_bytes_ += meta.file_size;
}

}  // namespace pipelsm
