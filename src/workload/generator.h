// Workload generation: the paper's insert-only workloads (§IV-A: 16-byte
// keys, 100-byte values, fifty million entries — scaled down here) plus
// the key orders and value shapes the benches sweep over.
#pragma once

#include <cstdint>
#include <string>

#include "src/util/random.h"
#include "src/util/slice.h"

namespace pipelsm {

enum class KeyOrder { kSequential, kRandom };

class WorkloadGenerator {
 public:
  // value_compressibility in [0,1]: fraction of each value that is a
  // repeated pattern (snappy-friendly); the rest is pseudo-random.
  WorkloadGenerator(uint64_t num_entries, size_t key_size, size_t value_size,
                    KeyOrder order, uint32_t seed = 301,
                    double value_compressibility = 0.5);

  uint64_t num_entries() const { return num_entries_; }
  size_t key_size() const { return key_size_; }
  size_t value_size() const { return value_size_; }

  // The i-th key of the run (zero-padded decimal, collision-free).
  // Sequential order yields ascending keys; random order a fixed
  // permutation-ish shuffle of the same key space.
  std::string Key(uint64_t i) const;

  // The value written for key index i (deterministic per index).
  std::string Value(uint64_t i) const;

 private:
  const uint64_t num_entries_;
  const size_t key_size_;
  const size_t value_size_;
  const KeyOrder order_;
  const uint32_t seed_;
  const double compressibility_;
};

}  // namespace pipelsm
