// Workload generation: the paper's insert-only workloads (§IV-A: 16-byte
// keys, 100-byte values, fifty million entries — scaled down here) plus
// the key orders and value shapes the benches sweep over.
#pragma once

#include <cstdint>
#include <string>

#include "src/util/random.h"
#include "src/util/slice.h"

namespace pipelsm {

enum class KeyOrder { kSequential, kRandom };

class WorkloadGenerator {
 public:
  // value_compressibility in [0,1]: fraction of each value that is a
  // repeated pattern (snappy-friendly); the rest is pseudo-random.
  WorkloadGenerator(uint64_t num_entries, size_t key_size, size_t value_size,
                    KeyOrder order, uint32_t seed = 301,
                    double value_compressibility = 0.5);

  uint64_t num_entries() const { return num_entries_; }
  size_t key_size() const { return key_size_; }
  size_t value_size() const { return value_size_; }

  // The i-th key of the run (zero-padded decimal, collision-free).
  // Sequential order yields ascending keys; random order a fixed
  // permutation-ish shuffle of the same key space.
  std::string Key(uint64_t i) const;

  // The value written for key index i (deterministic per index).
  std::string Value(uint64_t i) const;

 private:
  const uint64_t num_entries_;
  const size_t key_size_;
  const size_t value_size_;
  const KeyOrder order_;
  const uint32_t seed_;
  const double compressibility_;
};

// Zipfian-distributed index generator over [0, n) (the YCSB construction:
// Gray et al.'s rejection-free inverse-CDF with precomputed zeta). With
// the default theta=0.99 roughly 10% of the items draw ~80% of the
// accesses. Next() scrambles the raw rank with a fixed hash so the hot
// items are scattered across the key space instead of clustered at 0.
// Not thread-safe; give each thread its own instance (distinct seeds).
class ZipfianGenerator {
 public:
  explicit ZipfianGenerator(uint64_t n, double theta = 0.99,
                            uint64_t seed = 301);

  // A Zipf-distributed item in [0, n), hot items scattered.
  uint64_t Next();

  // The raw Zipf rank in [0, n): 0 is the hottest item, 1 the next, ...
  uint64_t NextRank();

 private:
  const uint64_t n_;
  const double theta_;
  double zeta_n_;    // sum_{i=1..n} 1/i^theta
  double alpha_;
  double eta_;
  double zeta2_;     // zeta(2, theta)
  Xoroshiro128pp rng_;
};

}  // namespace pipelsm
