// Standalone compaction-input builder: constructs the "upper component /
// lower component" table pairs the executor-level benches and tests feed
// straight into a CompactionExecutor, without going through a DB.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/compaction/types.h"
#include "src/db/dbformat.h"
#include "src/env/env.h"
#include "src/table/table.h"
#include "src/workload/generator.h"

namespace pipelsm {

struct TableGenOptions {
  Env* env = nullptr;
  const InternalKeyComparator* icmp = nullptr;
  std::string dir = "/tablegen";

  size_t key_size = 16;          // paper default
  size_t value_size = 100;       // paper default
  size_t block_size = 4 * 1024;  // paper default
  int block_restart_interval = 16;
  CompressionType compression = CompressionType::kLzCompression;

  // Bytes of user data per generated table.
  uint64_t upper_bytes = 4 * 1024 * 1024;  // paper Fig 11(a): 4 MB input
  uint64_t lower_bytes = 8 * 1024 * 1024;  // lower component, same range
  int lower_tables = 4;                    // split lower across N files
  uint32_t seed = 301;
};

// Result of GenerateCompactionInputs: open tables, upper first.
struct CompactionInputs {
  std::vector<std::shared_ptr<Table>> tables;
  uint64_t total_bytes = 0;     // sum of file sizes
  uint64_t total_entries = 0;
};

// Builds one upper-component table and `lower_tables` lower-component
// tables over interleaved key spaces (upper keys rewrite ~half the lower
// keys, so the merge actually drops shadowed versions).
Status GenerateCompactionInputs(const TableGenOptions& options,
                                CompactionInputs* out);

// A no-op sink that discards output metadata (bandwidth-only benches) but
// still writes real files through the Env.
class CountingSink : public CompactionSink {
 public:
  CountingSink(Env* env, std::string dir) : env_(env), dir_(std::move(dir)) {}

  Status NewOutputFile(uint64_t* file_number,
                       std::unique_ptr<WritableFile>* file) override;
  void OutputFinished(const OutputMeta& meta) override;

  const std::vector<OutputMeta>& outputs() const { return outputs_; }
  uint64_t total_output_bytes() const { return total_bytes_; }

 private:
  Env* const env_;
  const std::string dir_;
  uint64_t next_number_ = 1000000;  // clear of generated input numbers
  std::vector<OutputMeta> outputs_;
  uint64_t total_bytes_ = 0;
};

}  // namespace pipelsm
