#include "src/workload/generator.h"

#include <cmath>
#include <cstdio>

namespace pipelsm {

WorkloadGenerator::WorkloadGenerator(uint64_t num_entries, size_t key_size,
                                     size_t value_size, KeyOrder order,
                                     uint32_t seed,
                                     double value_compressibility)
    : num_entries_(num_entries),
      key_size_(key_size < 8 ? 8 : key_size),
      value_size_(value_size),
      order_(order),
      seed_(seed),
      compressibility_(value_compressibility) {}

std::string WorkloadGenerator::Key(uint64_t i) const {
  uint64_t k = i;
  if (order_ == KeyOrder::kRandom) {
    // Feistel-style mix for a collision-free pseudo-random order over the
    // index space (bijective on 64 bits).
    k = k * 0x9e3779b97f4a7c15ULL + seed_;
    k ^= k >> 29;
    k *= 0xbf58476d1ce4e5b9ULL;
    k ^= k >> 32;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020llu",
                static_cast<unsigned long long>(k));
  std::string key(buf);
  if (key.size() < key_size_) {
    key.append(key_size_ - key.size(), 'k');
  } else {
    // Keep the LOW-order digits: for sequential indices the high digits
    // are constant zeros (all keys would collide), while the low digits
    // both discriminate and preserve numeric order.
    key = key.substr(key.size() - key_size_);
  }
  return key;
}

std::string WorkloadGenerator::Value(uint64_t i) const {
  std::string value;
  value.reserve(value_size_);
  const size_t pattern_len =
      static_cast<size_t>(value_size_ * compressibility_);
  // Compressible prefix: a short repeated pattern keyed by the index.
  const char pattern = static_cast<char>('a' + (i % 26));
  value.append(pattern_len, pattern);
  // Incompressible tail: xoroshiro filler.
  Xoroshiro128pp rng(seed_ ^ (i * 0x517cc1b727220a95ULL));
  while (value.size() < value_size_) {
    uint64_t bits = rng.Next();
    for (int b = 0; b < 8 && value.size() < value_size_; b++) {
      value.push_back(static_cast<char>(bits >> (8 * b)));
    }
  }
  return value;
}

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n == 0 ? 1 : n), theta_(theta), rng_(seed) {
  zeta_n_ = Zeta(n_, theta_);
  zeta2_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zeta_n_);
}

uint64_t ZipfianGenerator::NextRank() {
  // Gray et al. "Quickly generating billion-record synthetic databases".
  const double u =
      static_cast<double>(rng_.Next() >> 11) * (1.0 / 9007199254740992.0);
  const double uz = u * zeta_n_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

uint64_t ZipfianGenerator::Next() {
  // Scatter ranks across the key space (stable hash, then mod n) so hot
  // keys don't all sit at the low end of the key range.
  uint64_t h = NextRank() * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 32;
  return h % n_;
}

}  // namespace pipelsm
