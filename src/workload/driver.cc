#include "src/workload/driver.h"

#include "src/db/write_batch.h"
#include "src/util/stopwatch.h"

namespace pipelsm {

Status RunFill(DB* db, const FillOptions& options, FillResult* result) {
  WorkloadGenerator gen(options.num_entries, options.key_size,
                        options.value_size, options.order, options.seed);

  Stopwatch total;
  WriteBatch batch;
  uint64_t in_batch = 0;
  for (uint64_t i = 0; i < options.num_entries; i++) {
    Stopwatch op;
    batch.Put(gen.Key(i), gen.Value(i));
    in_batch++;
    if (in_batch >= options.batch_size || i + 1 == options.num_entries) {
      Status s = db->Write(WriteOptions(), &batch);
      if (!s.ok()) return s;
      batch.Clear();
      in_batch = 0;
    }
    result->latency_micros.Add(op.ElapsedNanos() / 1000.0);
  }

  if (options.wait_for_compactions) {
    Status s = db->WaitForCompactions();
    if (!s.ok()) return s;
  }

  result->entries = options.num_entries;
  result->seconds = total.ElapsedSeconds();
  result->ops_per_sec =
      result->seconds > 0 ? options.num_entries / result->seconds : 0;
  result->compaction = db->GetCompactionMetrics();
  const StepProfile& p = result->compaction.profile;
  result->compaction_bandwidth = p.WallBandwidth();
  return Status::OK();
}

Status RunReadCheck(DB* db, const FillOptions& fill, uint64_t num_reads,
                    double* ops_per_sec) {
  WorkloadGenerator gen(fill.num_entries, fill.key_size, fill.value_size,
                        fill.order, fill.seed);
  Random rnd(fill.seed + 17);
  Stopwatch total;
  std::string value;
  for (uint64_t i = 0; i < num_reads; i++) {
    const uint64_t index = rnd.Next() % fill.num_entries;
    Status s = db->Get(ReadOptions(), gen.Key(index), &value);
    if (!s.ok()) return s;
    if (value != gen.Value(index)) {
      return Status::Corruption("read-check value mismatch at index ",
                                std::to_string(index));
    }
  }
  const double seconds = total.ElapsedSeconds();
  *ops_per_sec = seconds > 0 ? num_reads / seconds : 0;
  return Status::OK();
}

}  // namespace pipelsm
