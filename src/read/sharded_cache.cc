#include "src/read/cache.h"

#include <atomic>
#include <cassert>
#include <cstring>
#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/obs/metrics.h"

namespace pipelsm {
namespace read {

namespace {

size_t RoundUpToPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

size_t DefaultShardCount() {
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 8;
  size_t shards = RoundUpToPowerOfTwo(hw);
  return shards > 16 ? 16 : shards;
}

class ShardedLRUCache final : public Cache {
 public:
  ShardedLRUCache(size_t capacity, size_t num_shards)
      : capacity_(capacity),
        num_shards_(RoundUpToPowerOfTwo(
            num_shards == 0 ? DefaultShardCount() : num_shards)),
        shard_mask_(num_shards_ - 1),
        shards_(num_shards_) {
    // The remainder of an uneven split lands in shard 0 so the shard
    // capacities always sum to `capacity`.
    const size_t per_shard = capacity_ / num_shards_;
    for (auto& shard : shards_) shard.capacity = per_shard;
    shards_[0].capacity += capacity_ - per_shard * num_shards_;
  }

  std::shared_ptr<void> Lookup(const Slice& key) override {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(KeyView(key));
    if (it == shard.index.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      if (miss_counter_ != nullptr) miss_counter_->Add();
      return nullptr;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (hit_counter_ != nullptr) hit_counter_->Add();
    return it->second->value;
  }

  void Insert(const Slice& key, std::shared_ptr<void> value,
              size_t charge) override {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(KeyView(key));
    if (it != shard.index.end()) {
      AdjustUsage(shard, -static_cast<int64_t>(it->second->charge));
      shard.lru.erase(it->second);
      shard.index.erase(it);
    }
    shard.lru.push_front(Entry{key.ToString(), std::move(value), charge});
    shard.index[std::string_view(shard.lru.front().key)] = shard.lru.begin();
    AdjustUsage(shard, static_cast<int64_t>(charge));
    // Evict from the cold end until this shard fits its capacity slice,
    // but never the entry just inserted: an over-capacity value must
    // still serve the caller that paid to load it.
    while (shard.usage > shard.capacity && shard.lru.size() > 1) {
      EvictLocked(shard, std::prev(shard.lru.end()));
    }
  }

  void Erase(const Slice& key) override {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(KeyView(key));
    if (it == shard.index.end()) return;
    AdjustUsage(shard, -static_cast<int64_t>(it->second->charge));
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }

  size_t ErasePrefix(const Slice& prefix) override {
    size_t erased = 0;
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (auto it = shard.lru.begin(); it != shard.lru.end();) {
        if (it->key.size() >= prefix.size() &&
            memcmp(it->key.data(), prefix.data(), prefix.size()) == 0) {
          AdjustUsage(shard, -static_cast<int64_t>(it->charge));
          shard.index.erase(std::string_view(it->key));
          it = shard.lru.erase(it);
          erased++;
        } else {
          ++it;
        }
      }
    }
    return erased;
  }

  uint64_t NewId() override {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  size_t usage() const override {
    return usage_.load(std::memory_order_relaxed);
  }
  size_t capacity() const override { return capacity_; }
  size_t num_shards() const override { return num_shards_; }

  uint64_t hits() const override {
    return hits_.load(std::memory_order_relaxed);
  }
  uint64_t misses() const override {
    return misses_.load(std::memory_order_relaxed);
  }
  uint64_t evictions() const override {
    return evictions_.load(std::memory_order_relaxed);
  }

  void BindStats(obs::Counter* hits, obs::Counter* misses,
                 obs::Counter* evictions, obs::Gauge* usage) override {
    hit_counter_ = hits;
    miss_counter_ = misses;
    eviction_counter_ = evictions;
    usage_gauge_ = usage;
    if (usage_gauge_ != nullptr) {
      usage_gauge_->Set(static_cast<int64_t>(this->usage()));
    }
  }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<void> value;
    size_t charge;
  };

  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front = MRU
    // Views point into the owning Entry's key string; list nodes are
    // stable so the views survive splices.
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index;
    size_t usage = 0;   // guarded by mu
    size_t capacity = 0;
  };

  static std::string_view KeyView(const Slice& key) {
    return std::string_view(key.data(), key.size());
  }

  Shard& ShardFor(const Slice& key) {
    size_t h = std::hash<std::string_view>()(KeyView(key));
    return shards_[h & shard_mask_];
  }

  void AdjustUsage(Shard& shard, int64_t delta) {
    shard.usage = static_cast<size_t>(
        static_cast<int64_t>(shard.usage) + delta);
    size_t total = usage_.fetch_add(static_cast<uint64_t>(delta),
                                    std::memory_order_relaxed) +
                   static_cast<uint64_t>(delta);
    if (usage_gauge_ != nullptr) {
      usage_gauge_->Set(static_cast<int64_t>(total));
    }
  }

  void EvictLocked(Shard& shard, std::list<Entry>::iterator victim) {
    AdjustUsage(shard, -static_cast<int64_t>(victim->charge));
    shard.index.erase(std::string_view(victim->key));
    shard.lru.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (eviction_counter_ != nullptr) eviction_counter_->Add();
  }

  const size_t capacity_;
  const size_t num_shards_;
  const size_t shard_mask_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> usage_{0};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  obs::Counter* hit_counter_ = nullptr;
  obs::Counter* miss_counter_ = nullptr;
  obs::Counter* eviction_counter_ = nullptr;
  obs::Gauge* usage_gauge_ = nullptr;
};

}  // namespace

std::unique_ptr<Cache> NewShardedLRUCache(size_t capacity,
                                          size_t num_shards) {
  return std::make_unique<ShardedLRUCache>(capacity, num_shards);
}

}  // namespace read
}  // namespace pipelsm
