// Read-path cache interface (docs/READ_PATH.md).
//
// One abstraction backs both hot read-path caches: the block cache
// (data blocks + filter partitions, charged by byte size) and the
// table-cache store (open Table readers, charged one unit each). The
// production implementation is a lock-sharded LRU — the key hashes to
// one of a power-of-two set of shards, each with its own mutex, LRU
// list, and capacity slice — so concurrent point reads on different
// keys never serialize on a single cache mutex.
//
// Values are type-erased shared_ptrs: a Lookup hands out a reference
// that pins the value for as long as the caller holds it, so eviction
// never invalidates an entry a standing iterator is still reading.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "src/util/slice.h"

namespace pipelsm {

namespace obs {
class Counter;
class Gauge;
}  // namespace obs

namespace read {

class Cache {
 public:
  virtual ~Cache() = default;

  // Returns the cached value for `key`, promoting it to MRU, or nullptr.
  virtual std::shared_ptr<void> Lookup(const Slice& key) = 0;

  // Inserts (replacing any existing entry for `key`) and evicts LRU
  // entries until usage fits capacity again. The just-inserted entry is
  // never the eviction victim, so an over-capacity value still serves
  // the caller that loaded it.
  virtual void Insert(const Slice& key, std::shared_ptr<void> value,
                      size_t charge) = 0;

  // Drops `key` if present. In-flight references stay valid.
  virtual void Erase(const Slice& key) = 0;

  // Drops every entry whose key starts with `prefix`; returns the count.
  // Used by obsolete-file GC to purge a dropped table's blocks (keys are
  // cache-id-prefixed). Scans all shards — callers run it off the hot
  // path (per deleted file, not per read).
  virtual size_t ErasePrefix(const Slice& prefix) = 0;

  // Returns a new numeric id. Clients that share this cache partition
  // the key space by prefixing their keys with an id.
  virtual uint64_t NewId() = 0;

  virtual size_t usage() const = 0;
  virtual size_t capacity() const = 0;
  virtual size_t num_shards() const = 0;

  virtual uint64_t hits() const = 0;
  virtual uint64_t misses() const = 0;
  virtual uint64_t evictions() const = 0;

  // Binds obs instruments that the cache thereafter updates inline
  // (counters on each hit/miss/eviction, gauge on each usage change).
  // Any pointer may be nullptr. Not thread-safe against concurrent
  // cache operations — bind before the cache goes hot.
  virtual void BindStats(obs::Counter* hits, obs::Counter* misses,
                         obs::Counter* evictions, obs::Gauge* usage) = 0;

  // Typed convenience over Lookup().
  template <typename T>
  std::shared_ptr<T> LookupAs(const Slice& key) {
    return std::static_pointer_cast<T>(Lookup(key));
  }
};

// A lock-sharded LRU cache holding up to `capacity` total charge.
// `num_shards` is rounded up to a power of two; 0 picks a default from
// the hardware concurrency. `num_shards == 1` degenerates to a single
// mutex — the bench baseline.
std::unique_ptr<Cache> NewShardedLRUCache(size_t capacity,
                                          size_t num_shards = 0);

}  // namespace read
}  // namespace pipelsm
