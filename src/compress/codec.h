// Codec selection used by the SSTable block format and the compaction
// executors' S3 (DECOMPRESS) / S5 (COMPRESS) steps.
#pragma once

#include <cstdint>
#include <string>

#include "src/util/slice.h"
#include "src/util/status.h"

namespace pipelsm {

enum class CompressionType : uint8_t {
  kNoCompression = 0x0,
  kLzCompression = 0x1,
};

// Compresses `raw` with `type` into *out. Returns the type actually used:
// if compression does not shrink the data by at least 12.5% the raw bytes
// are stored and kNoCompression is returned (same policy as LevelDB).
CompressionType CompressBlock(CompressionType type, const Slice& raw,
                              std::string* out);

// Inverse of CompressBlock for the returned type.
Status UncompressBlock(CompressionType type, const Slice& stored,
                       std::string* out);

const char* CompressionTypeName(CompressionType type);

}  // namespace pipelsm
