// A from-scratch Snappy-class byte-oriented LZ77 codec ("pz1" format).
//
// The paper compresses every data block with snappy in S5 and decompresses
// in S3; what matters for reproducing its results is a codec with the same
// cost profile: fast greedy compression (hash-table match finder, no entropy
// stage) and a much cheaper copy-based decompression. This codec follows the
// snappy tag design:
//
//   preamble: varint32 uncompressed length
//   elements: tag byte, low 2 bits select the kind
//     00 literal    — (len-1) in the upper 6 bits; 60/61 mean 1/2 extra
//                     length bytes follow (little-endian), then the bytes
//     01 copy-1     — len 4..11 in bits [2,4], offset 11 bits:
//                     bits [5,7] high + 1 following byte
//     10 copy-2     — (len-1) in upper 6 bits, 2-byte LE offset
//     11 copy-4     — (len-1) in upper 6 bits, 4-byte LE offset
//
// Matches are at least 4 bytes; offsets never exceed the bytes produced so
// far. Decompression validates every offset/length and fails cleanly on
// corrupt input (required: S2's checksum is the first line of defense, but
// the decoder must never read or write out of bounds regardless).
#pragma once

#include <cstddef>
#include <string>

#include "src/util/status.h"

namespace pipelsm::lz {

// Maximum size Compress may produce for an n-byte input.
size_t MaxCompressedLength(size_t n);

// Compresses input[0,n-1] into *output (replacing its contents).
void Compress(const char* input, size_t n, std::string* output);

// Reads the uncompressed-length preamble.
bool GetUncompressedLength(const char* input, size_t n, size_t* result);

// Decompresses into *output (resized to the uncompressed length).
// Returns Corruption on any malformed input.
Status Uncompress(const char* input, size_t n, std::string* output);

}  // namespace pipelsm::lz
