#include "src/compress/lz_codec.h"

#include <cstring>

#include "src/util/coding.h"

namespace pipelsm::lz {

namespace {

constexpr int kMinMatch = 4;
constexpr size_t kMaxLiteralRun = 1u << 16;  // flush literals in runs <= 64K
constexpr int kHashBits = 14;
constexpr size_t kHashTableSize = 1u << kHashBits;

inline uint32_t Load32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint32_t HashBytes(uint32_t bytes) {
  return (bytes * 0x1e35a7bdu) >> (32 - kHashBits);
}

// Emit a literal run of [begin, end).
void EmitLiteral(std::string* out, const char* begin, const char* end) {
  while (begin < end) {
    size_t len = static_cast<size_t>(end - begin);
    if (len > kMaxLiteralRun) len = kMaxLiteralRun;
    size_t n = len - 1;
    if (n < 60) {
      out->push_back(static_cast<char>(n << 2));
    } else if (n < 256) {
      out->push_back(static_cast<char>(60 << 2));
      out->push_back(static_cast<char>(n));
    } else {
      out->push_back(static_cast<char>(61 << 2));
      out->push_back(static_cast<char>(n & 0xff));
      out->push_back(static_cast<char>((n >> 8) & 0xff));
    }
    out->append(begin, len);
    begin += len;
  }
}

// Emit one copy element of length <= 64, offset < 2^32.
void EmitCopyUpTo64(std::string* out, size_t offset, size_t len) {
  if (len >= 4 && len <= 11 && offset < 2048) {
    out->push_back(static_cast<char>(0x01 | ((len - 4) << 2) |
                                     ((offset >> 8) << 5)));
    out->push_back(static_cast<char>(offset & 0xff));
  } else if (offset < 65536) {
    out->push_back(static_cast<char>(0x02 | ((len - 1) << 2)));
    out->push_back(static_cast<char>(offset & 0xff));
    out->push_back(static_cast<char>((offset >> 8) & 0xff));
  } else {
    out->push_back(static_cast<char>(0x03 | ((len - 1) << 2)));
    out->push_back(static_cast<char>(offset & 0xff));
    out->push_back(static_cast<char>((offset >> 8) & 0xff));
    out->push_back(static_cast<char>((offset >> 16) & 0xff));
    out->push_back(static_cast<char>((offset >> 24) & 0xff));
  }
}

void EmitCopy(std::string* out, size_t offset, size_t len) {
  while (len > 64) {
    EmitCopyUpTo64(out, offset, 64);
    len -= 64;
  }
  if (len > 0) {
    // Residuals < 4 bytes fall through to copy-2/copy-4 inside
    // EmitCopyUpTo64 (their 6-bit length field covers 1..64).
    EmitCopyUpTo64(out, offset, len);
  }
}

}  // namespace

size_t MaxCompressedLength(size_t n) {
  // Worst case: all literals; one tag + up to 2 length bytes per 64K run,
  // plus the 5-byte preamble. 32 + n + n/6 is a comfortable bound.
  return 32 + n + n / 6;
}

void Compress(const char* input, size_t n, std::string* output) {
  output->clear();
  output->reserve(MaxCompressedLength(n));
  PutVarint32(output, static_cast<uint32_t>(n));
  if (n == 0) return;

  if (n < kMinMatch + 4) {
    EmitLiteral(output, input, input + n);
    return;
  }

  uint16_t table[kHashTableSize];
  std::memset(table, 0, sizeof(table));
  // table stores positions + 1 relative to `base`, window of 64K. For inputs
  // larger than 64K we rebase the window as we go; offsets are still emitted
  // absolutely relative to the current position so copy-4 handles them.
  const char* const base = input;
  const char* ip = input;
  const char* const ip_end = input + n;
  const char* const ip_limit = ip_end - kMinMatch;  // last valid match start
  const char* next_emit = input;  // first unemitted literal byte

  // For inputs > 64K the uint16_t table entries would alias; keep a separate
  // epoch base that slides forward.
  size_t window_base = 0;  // offset of table's position origin from `base`

  while (ip <= ip_limit) {
    // Slide window so (ip - base - window_base) fits in 16 bits with slack.
    const size_t ip_off = static_cast<size_t>(ip - base);
    if (ip_off - window_base >= 0xF000) {
      window_base = ip_off;
      std::memset(table, 0, sizeof(table));
    }

    const uint32_t h = HashBytes(Load32(ip));
    const uint16_t slot = table[h];
    table[h] = static_cast<uint16_t>(ip_off - window_base + 1);

    if (slot != 0) {
      const char* candidate = base + window_base + slot - 1;
      if (candidate < ip && Load32(candidate) == Load32(ip)) {
        // Extend the match.
        const char* m = ip + kMinMatch;
        const char* c = candidate + kMinMatch;
        while (m < ip_end && *m == *c) {
          m++;
          c++;
        }
        const size_t match_len = static_cast<size_t>(m - ip);
        const size_t offset = static_cast<size_t>(ip - candidate);
        EmitLiteral(output, next_emit, ip);
        EmitCopy(output, offset, match_len);
        ip = m;
        next_emit = ip;
        // Refresh hash at the end of the match to find chained matches.
        if (ip <= ip_limit) {
          const size_t off2 = static_cast<size_t>(ip - 1 - base);
          if (off2 >= window_base) {
            table[HashBytes(Load32(ip - 1))] =
                static_cast<uint16_t>(off2 - window_base + 1);
          }
        }
        continue;
      }
    }
    ip++;
  }
  EmitLiteral(output, next_emit, ip_end);
}

bool GetUncompressedLength(const char* input, size_t n, size_t* result) {
  uint32_t len;
  const char* p = GetVarint32Ptr(input, input + n, &len);
  if (p == nullptr) return false;
  *result = len;
  return true;
}

Status Uncompress(const char* input, size_t n, std::string* output) {
  uint32_t ulen;
  const char* ip = GetVarint32Ptr(input, input + n, &ulen);
  if (ip == nullptr) {
    return Status::Corruption("lz: bad uncompressed-length preamble");
  }
  const char* const ip_end = input + n;
  output->clear();
  output->reserve(ulen);

  while (ip < ip_end) {
    const uint8_t tag = static_cast<uint8_t>(*ip++);
    const uint8_t kind = tag & 0x03;
    if (kind == 0x00) {
      // Literal.
      size_t len = (tag >> 2) + 1;
      if (len > 60) {
        const size_t extra = len - 60;  // 1 or 2 length bytes
        if (extra > 2 || ip + extra > ip_end) {
          return Status::Corruption("lz: truncated literal length");
        }
        size_t n2 = 0;
        for (size_t i = 0; i < extra; i++) {
          n2 |= static_cast<size_t>(static_cast<uint8_t>(ip[i])) << (8 * i);
        }
        len = n2 + 1;
        ip += extra;
      }
      if (ip + len > ip_end) {
        return Status::Corruption("lz: truncated literal data");
      }
      output->append(ip, len);
      ip += len;
    } else {
      size_t len;
      size_t offset;
      if (kind == 0x01) {
        len = ((tag >> 2) & 0x07) + 4;
        if (ip >= ip_end) return Status::Corruption("lz: truncated copy-1");
        offset = (static_cast<size_t>(tag >> 5) << 8) |
                 static_cast<uint8_t>(*ip++);
      } else if (kind == 0x02) {
        len = (tag >> 2) + 1;
        if (ip + 2 > ip_end) return Status::Corruption("lz: truncated copy-2");
        offset = static_cast<uint8_t>(ip[0]) |
                 (static_cast<size_t>(static_cast<uint8_t>(ip[1])) << 8);
        ip += 2;
      } else {
        len = (tag >> 2) + 1;
        if (ip + 4 > ip_end) return Status::Corruption("lz: truncated copy-4");
        offset = static_cast<uint8_t>(ip[0]) |
                 (static_cast<size_t>(static_cast<uint8_t>(ip[1])) << 8) |
                 (static_cast<size_t>(static_cast<uint8_t>(ip[2])) << 16) |
                 (static_cast<size_t>(static_cast<uint8_t>(ip[3])) << 24);
        ip += 4;
      }
      if (offset == 0 || offset > output->size()) {
        return Status::Corruption("lz: copy offset out of range");
      }
      if (output->size() + len > ulen) {
        return Status::Corruption("lz: output overrun");
      }
      // Byte-by-byte copy: overlapping copies (offset < len) are the RLE
      // case and must replicate already-written bytes.
      size_t pos = output->size() - offset;
      for (size_t i = 0; i < len; i++) {
        output->push_back((*output)[pos + i]);
      }
    }
    if (output->size() > ulen) {
      return Status::Corruption("lz: output exceeds declared length");
    }
  }
  if (output->size() != ulen) {
    return Status::Corruption("lz: output shorter than declared length");
  }
  return Status::OK();
}

}  // namespace pipelsm::lz
