#include "src/compress/codec.h"

#include "src/compress/lz_codec.h"

namespace pipelsm {

CompressionType CompressBlock(CompressionType type, const Slice& raw,
                              std::string* out) {
  switch (type) {
    case CompressionType::kLzCompression:
      lz::Compress(raw.data(), raw.size(), out);
      if (out->size() < raw.size() - raw.size() / 8) {
        return CompressionType::kLzCompression;
      }
      // Not compressible enough: store raw.
      out->assign(raw.data(), raw.size());
      return CompressionType::kNoCompression;
    case CompressionType::kNoCompression:
    default:
      out->assign(raw.data(), raw.size());
      return CompressionType::kNoCompression;
  }
}

Status UncompressBlock(CompressionType type, const Slice& stored,
                       std::string* out) {
  switch (type) {
    case CompressionType::kNoCompression:
      out->assign(stored.data(), stored.size());
      return Status::OK();
    case CompressionType::kLzCompression:
      return lz::Uncompress(stored.data(), stored.size(), out);
    default:
      return Status::Corruption("unknown compression type");
  }
}

const char* CompressionTypeName(CompressionType type) {
  switch (type) {
    case CompressionType::kNoCompression:
      return "none";
    case CompressionType::kLzCompression:
      return "lz";
    default:
      return "unknown";
  }
}

}  // namespace pipelsm
