// The paper's analytic bandwidth model (Equations 1-7, §III).
//
// All functions take the measured per-sub-task step times t_S1..t_S7 (or a
// StepProfile whose averages supply them) and return predicted compaction
// bandwidths / ideal speedups. Benches print these next to the measured
// numbers; the paper reports practical PCP within ~10% of ideal.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/stopwatch.h"

namespace pipelsm::model {

// Per-sub-task cost in seconds of each of the seven steps, for sub-tasks
// of `subtask_bytes` input.
struct StepTimes {
  std::array<double, kNumSteps> seconds{};
  double subtask_bytes = 0;

  double read() const { return seconds[kStepRead]; }
  double write() const { return seconds[kStepWrite]; }
  // Sum over the compute steps S2..S6.
  double compute() const {
    return seconds[kStepChecksum] + seconds[kStepDecompress] +
           seconds[kStepSort] + seconds[kStepCompress] +
           seconds[kStepRechecksum];
  }
  double total() const { return read() + compute() + write(); }

  // Average per-sub-task step times out of an executor's StepProfile.
  static StepTimes FromProfile(const StepProfile& profile);
};

// Eq. 1: B_scp = l / sum(t_Si).
double ScpBandwidth(const StepTimes& t);

// Eq. 2: B_pcp = l / max(t_S1, sum(t_S2..S6), t_S7).
double PcpBandwidth(const StepTimes& t);

// Eq. 3: ideal PCP speedup over SCP.
double PcpIdealSpeedup(const StepTimes& t);

// Eq. 4: B_s-ppcp with k devices = l / max(t_S1/k, compute, t_S7/k).
double SppcpBandwidth(const StepTimes& t, int k);

// Eq. 5: ideal S-PPCP speedup over PCP; bounded by
// min(k, max(t_S1,t_S7)/compute).
double SppcpIdealSpeedup(const StepTimes& t, int k);

// Eq. 6: B_c-ppcp with k cores = l / max(t_S1, compute/k, t_S7).
double CppcpBandwidth(const StepTimes& t, int k);

// Eq. 7: ideal C-PPCP speedup over PCP; bounded by
// min(k, compute/max(t_S1,t_S7)).
double CppcpIdealSpeedup(const StepTimes& t, int k);

// Smallest k at which S-PPCP flips from I/O-bound to CPU-bound
// (§III-C.1: k > max(t_S1,t_S7)/compute). Returns >= 1.
int SppcpSaturationDisks(const StepTimes& t);

// Smallest k at which C-PPCP flips from CPU-bound to I/O-bound
// (§III-C.2: k > compute/max(t_S1,t_S7)). Returns >= 1.
int CppcpSaturationThreads(const StepTimes& t);

// True if the pipeline bottleneck is a compute stage (the SSD regime of
// Figure 6(b)); false if it is I/O (the HDD regime of Figure 6(a)).
bool IsCpuBound(const StepTimes& t);

// The paper's §III-C prescription as data: which procedure the measured
// step times call for, at what parallelism, and the ideal gain over plain
// PCP. Shared by the online advisor (src/obs/advisor.h) and the adaptive
// compaction scheduler (src/compaction/scheduler.h) so report and control
// loop can never disagree.
struct Prescription {
  enum Procedure { kSCP = 0, kPCP = 1, kSPPCP = 2, kCPPCP = 3 };

  Procedure procedure = kPCP;
  int k = 1;                 // stripe width (S-PPCP) or workers (C-PPCP)
  bool cpu_bound = false;    // IsCpuBound(t) at evaluation time
  double gain_vs_pcp = 1.0;  // ideal speedup of `procedure` over Eq. 2
  const char* reason = "";   // one-line rationale, static storage
};

const char* PrescriptionProcedureName(Prescription::Procedure procedure);

// Evaluates Eqs. 1-7 on `t` and picks the procedure §III-C prescribes:
// a compute bottleneck wants C-PPCP at its Eq. 6 saturation k, an I/O
// bottleneck wants S-PPCP at its Eq. 4 saturation k. A parallel variant
// is only prescribed when its ideal gain over PCP reaches `min_gain`
// (below that the model says added parallelism is churn); `max_k` caps
// the saturation k (<= 0 = uncapped), and the gain is re-evaluated at the
// capped k so an out-of-reach saturation point cannot justify a switch.
Prescription Prescribe(const StepTimes& t, double min_gain = 1.1,
                       int max_k = 0);

// Fleet-wide resource pool the arbiter divides among concurrent
// compactions. A lane is one unit of I/O parallelism (a stripe device in
// Eq. 4 terms); a worker is one unit of compute parallelism (a core in
// Eq. 6 terms). Every admitted job holds at least one of each — PCP is a
// 1-lane/1-worker pipeline — so min(io_lanes, compute_workers) bounds the
// number of jobs that can run at once.
struct FleetBudget {
  int io_lanes = 4;
  int compute_workers = 4;
};

// One job's share of the fleet budget. `lanes`/`workers` are the units
// the job holds (k = max of the two; the non-upgraded dimension stays 1).
struct FleetAllocation {
  Prescription prescription;
  int lanes = 1;
  int workers = 1;
};

// Generalizes Prescribe() to K concurrent jobs competing for one
// FleetBudget. Every job first gets the Eq. 2 floor (1 lane + 1 worker;
// SCP instead if Eq. 3 says pipelining is churn). Remaining units go one
// at a time to the job whose next unit buys the largest marginal Eq. 4 /
// Eq. 6 bandwidth gain — I/O-bound jobs compete for lanes (S-PPCP),
// CPU-bound jobs for workers (C-PPCP). A job whose final allocation does
// not beat PCP by `min_gain` is demoted back to the floor and its units
// redistributed. If jobs.size() exceeds the budget's job bound the
// overflow entries get k=0 allocations (caller must queue them).
std::vector<FleetAllocation> PrescribeFleet(const std::vector<StepTimes>& jobs,
                                            const FleetBudget& budget,
                                            double min_gain = 1.1);

std::string Describe(const StepTimes& t);

}  // namespace pipelsm::model
