// The paper's analytic bandwidth model (Equations 1-7, §III).
//
// All functions take the measured per-sub-task step times t_S1..t_S7 (or a
// StepProfile whose averages supply them) and return predicted compaction
// bandwidths / ideal speedups. Benches print these next to the measured
// numbers; the paper reports practical PCP within ~10% of ideal.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "src/util/stopwatch.h"

namespace pipelsm::model {

// Per-sub-task cost in seconds of each of the seven steps, for sub-tasks
// of `subtask_bytes` input.
struct StepTimes {
  std::array<double, kNumSteps> seconds{};
  double subtask_bytes = 0;

  double read() const { return seconds[kStepRead]; }
  double write() const { return seconds[kStepWrite]; }
  // Sum over the compute steps S2..S6.
  double compute() const {
    return seconds[kStepChecksum] + seconds[kStepDecompress] +
           seconds[kStepSort] + seconds[kStepCompress] +
           seconds[kStepRechecksum];
  }
  double total() const { return read() + compute() + write(); }

  // Average per-sub-task step times out of an executor's StepProfile.
  static StepTimes FromProfile(const StepProfile& profile);
};

// Eq. 1: B_scp = l / sum(t_Si).
double ScpBandwidth(const StepTimes& t);

// Eq. 2: B_pcp = l / max(t_S1, sum(t_S2..S6), t_S7).
double PcpBandwidth(const StepTimes& t);

// Eq. 3: ideal PCP speedup over SCP.
double PcpIdealSpeedup(const StepTimes& t);

// Eq. 4: B_s-ppcp with k devices = l / max(t_S1/k, compute, t_S7/k).
double SppcpBandwidth(const StepTimes& t, int k);

// Eq. 5: ideal S-PPCP speedup over PCP; bounded by
// min(k, max(t_S1,t_S7)/compute).
double SppcpIdealSpeedup(const StepTimes& t, int k);

// Eq. 6: B_c-ppcp with k cores = l / max(t_S1, compute/k, t_S7).
double CppcpBandwidth(const StepTimes& t, int k);

// Eq. 7: ideal C-PPCP speedup over PCP; bounded by
// min(k, compute/max(t_S1,t_S7)).
double CppcpIdealSpeedup(const StepTimes& t, int k);

// Smallest k at which S-PPCP flips from I/O-bound to CPU-bound
// (§III-C.1: k > max(t_S1,t_S7)/compute). Returns >= 1.
int SppcpSaturationDisks(const StepTimes& t);

// Smallest k at which C-PPCP flips from CPU-bound to I/O-bound
// (§III-C.2: k > compute/max(t_S1,t_S7)). Returns >= 1.
int CppcpSaturationThreads(const StepTimes& t);

// True if the pipeline bottleneck is a compute stage (the SSD regime of
// Figure 6(b)); false if it is I/O (the HDD regime of Figure 6(a)).
bool IsCpuBound(const StepTimes& t);

std::string Describe(const StepTimes& t);

}  // namespace pipelsm::model
