#include "src/model/model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pipelsm::model {

StepTimes StepTimes::FromProfile(const StepProfile& profile) {
  StepTimes t;
  const double n = profile.subtasks > 0 ? double(profile.subtasks) : 1.0;
  for (int i = 0; i < kNumSteps; i++) {
    t.seconds[i] = profile.nanos[i] * 1e-9 / n;
  }
  t.subtask_bytes = profile.input_bytes / n;
  return t;
}

double ScpBandwidth(const StepTimes& t) {
  const double total = t.total();
  return total > 0 ? t.subtask_bytes / total : 0.0;
}

double PcpBandwidth(const StepTimes& t) {
  const double bottleneck = std::max({t.read(), t.compute(), t.write()});
  return bottleneck > 0 ? t.subtask_bytes / bottleneck : 0.0;
}

double PcpIdealSpeedup(const StepTimes& t) {
  const double bottleneck = std::max({t.read(), t.compute(), t.write()});
  return bottleneck > 0 ? t.total() / bottleneck : 0.0;
}

double SppcpBandwidth(const StepTimes& t, int k) {
  if (k < 1) k = 1;
  const double bottleneck =
      std::max({t.read() / k, t.compute(), t.write() / k});
  return bottleneck > 0 ? t.subtask_bytes / bottleneck : 0.0;
}

double SppcpIdealSpeedup(const StepTimes& t, int k) {
  const double pcp = PcpBandwidth(t);
  return pcp > 0 ? SppcpBandwidth(t, k) / pcp : 0.0;
}

double CppcpBandwidth(const StepTimes& t, int k) {
  if (k < 1) k = 1;
  const double bottleneck =
      std::max({t.read(), t.compute() / k, t.write()});
  return bottleneck > 0 ? t.subtask_bytes / bottleneck : 0.0;
}

double CppcpIdealSpeedup(const StepTimes& t, int k) {
  const double pcp = PcpBandwidth(t);
  return pcp > 0 ? CppcpBandwidth(t, k) / pcp : 0.0;
}

int SppcpSaturationDisks(const StepTimes& t) {
  const double compute = t.compute();
  if (compute <= 0) return 1;
  return std::max(
      1, static_cast<int>(
             std::ceil(std::max(t.read(), t.write()) / compute)));
}

int CppcpSaturationThreads(const StepTimes& t) {
  const double io = std::max(t.read(), t.write());
  if (io <= 0) return 1;
  return std::max(1, static_cast<int>(std::ceil(t.compute() / io)));
}

bool IsCpuBound(const StepTimes& t) {
  return t.compute() >= std::max(t.read(), t.write());
}

std::string Describe(const StepTimes& t) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "steps(ms/subtask): read=%.3f compute=%.3f write=%.3f  "
      "regime=%s  B_scp=%.1f MB/s  B_pcp=%.1f MB/s  ideal_speedup=%.2fx",
      t.read() * 1e3, t.compute() * 1e3, t.write() * 1e3,
      IsCpuBound(t) ? "CPU-bound" : "I/O-bound",
      ScpBandwidth(t) / (1024.0 * 1024.0),
      PcpBandwidth(t) / (1024.0 * 1024.0), PcpIdealSpeedup(t));
  return std::string(buf);
}

}  // namespace pipelsm::model
