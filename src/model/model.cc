#include "src/model/model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pipelsm::model {

StepTimes StepTimes::FromProfile(const StepProfile& profile) {
  StepTimes t;
  const double n = profile.subtasks > 0 ? double(profile.subtasks) : 1.0;
  for (int i = 0; i < kNumSteps; i++) {
    t.seconds[i] = profile.nanos[i] * 1e-9 / n;
  }
  t.subtask_bytes = profile.input_bytes / n;
  return t;
}

double ScpBandwidth(const StepTimes& t) {
  const double total = t.total();
  return total > 0 ? t.subtask_bytes / total : 0.0;
}

double PcpBandwidth(const StepTimes& t) {
  const double bottleneck = std::max({t.read(), t.compute(), t.write()});
  return bottleneck > 0 ? t.subtask_bytes / bottleneck : 0.0;
}

double PcpIdealSpeedup(const StepTimes& t) {
  const double bottleneck = std::max({t.read(), t.compute(), t.write()});
  return bottleneck > 0 ? t.total() / bottleneck : 0.0;
}

double SppcpBandwidth(const StepTimes& t, int k) {
  if (k < 1) k = 1;
  const double bottleneck =
      std::max({t.read() / k, t.compute(), t.write() / k});
  return bottleneck > 0 ? t.subtask_bytes / bottleneck : 0.0;
}

double SppcpIdealSpeedup(const StepTimes& t, int k) {
  const double pcp = PcpBandwidth(t);
  return pcp > 0 ? SppcpBandwidth(t, k) / pcp : 0.0;
}

double CppcpBandwidth(const StepTimes& t, int k) {
  if (k < 1) k = 1;
  const double bottleneck =
      std::max({t.read(), t.compute() / k, t.write()});
  return bottleneck > 0 ? t.subtask_bytes / bottleneck : 0.0;
}

double CppcpIdealSpeedup(const StepTimes& t, int k) {
  const double pcp = PcpBandwidth(t);
  return pcp > 0 ? CppcpBandwidth(t, k) / pcp : 0.0;
}

int SppcpSaturationDisks(const StepTimes& t) {
  const double compute = t.compute();
  if (compute <= 0) return 1;
  return std::max(
      1, static_cast<int>(
             std::ceil(std::max(t.read(), t.write()) / compute)));
}

int CppcpSaturationThreads(const StepTimes& t) {
  const double io = std::max(t.read(), t.write());
  if (io <= 0) return 1;
  return std::max(1, static_cast<int>(std::ceil(t.compute() / io)));
}

bool IsCpuBound(const StepTimes& t) {
  return t.compute() >= std::max(t.read(), t.write());
}

const char* PrescriptionProcedureName(Prescription::Procedure procedure) {
  switch (procedure) {
    case Prescription::kSCP:
      return "SCP";
    case Prescription::kPCP:
      return "PCP";
    case Prescription::kSPPCP:
      return "S-PPCP";
    case Prescription::kCPPCP:
      return "C-PPCP";
  }
  return "unknown";
}

Prescription Prescribe(const StepTimes& t, double min_gain, int max_k) {
  Prescription p;
  p.cpu_bound = IsCpuBound(t);
  const double pcp = PcpBandwidth(t);
  if (p.cpu_bound) {
    p.procedure = Prescription::kCPPCP;
    p.k = CppcpSaturationThreads(t);
    if (max_k > 0) p.k = std::min(p.k, max_k);
    p.gain_vs_pcp = CppcpIdealSpeedup(t, p.k);
    p.reason =
        "compute (S2-S6) limits Eq. 2; Eq. 6 says k compute workers lift "
        "it until I/O saturates";
  } else {
    p.procedure = Prescription::kSPPCP;
    p.k = SppcpSaturationDisks(t);
    if (max_k > 0) p.k = std::min(p.k, max_k);
    p.gain_vs_pcp = SppcpIdealSpeedup(t, p.k);
    p.reason =
        "I/O limits Eq. 2; Eq. 4 says k striped devices lift it until "
        "compute saturates";
  }
  if (p.gain_vs_pcp < min_gain || pcp <= 0) {
    p.procedure = Prescription::kPCP;
    p.k = 1;
    p.gain_vs_pcp = 1.0;
    p.reason =
        "no stage-parallel variant beats Eq. 2 by the margin; stay on the "
        "3-stage pipeline";
  }
  return p;
}

std::string Describe(const StepTimes& t) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "steps(ms/subtask): read=%.3f compute=%.3f write=%.3f  "
      "regime=%s  B_scp=%.1f MB/s  B_pcp=%.1f MB/s  ideal_speedup=%.2fx",
      t.read() * 1e3, t.compute() * 1e3, t.write() * 1e3,
      IsCpuBound(t) ? "CPU-bound" : "I/O-bound",
      ScpBandwidth(t) / (1024.0 * 1024.0),
      PcpBandwidth(t) / (1024.0 * 1024.0), PcpIdealSpeedup(t));
  return std::string(buf);
}

}  // namespace pipelsm::model
