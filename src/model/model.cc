#include "src/model/model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pipelsm::model {

StepTimes StepTimes::FromProfile(const StepProfile& profile) {
  StepTimes t;
  const double n = profile.subtasks > 0 ? double(profile.subtasks) : 1.0;
  for (int i = 0; i < kNumSteps; i++) {
    t.seconds[i] = profile.nanos[i] * 1e-9 / n;
  }
  t.subtask_bytes = profile.input_bytes / n;
  return t;
}

double ScpBandwidth(const StepTimes& t) {
  const double total = t.total();
  return total > 0 ? t.subtask_bytes / total : 0.0;
}

double PcpBandwidth(const StepTimes& t) {
  const double bottleneck = std::max({t.read(), t.compute(), t.write()});
  return bottleneck > 0 ? t.subtask_bytes / bottleneck : 0.0;
}

double PcpIdealSpeedup(const StepTimes& t) {
  const double bottleneck = std::max({t.read(), t.compute(), t.write()});
  return bottleneck > 0 ? t.total() / bottleneck : 0.0;
}

double SppcpBandwidth(const StepTimes& t, int k) {
  if (k < 1) k = 1;
  const double bottleneck =
      std::max({t.read() / k, t.compute(), t.write() / k});
  return bottleneck > 0 ? t.subtask_bytes / bottleneck : 0.0;
}

double SppcpIdealSpeedup(const StepTimes& t, int k) {
  const double pcp = PcpBandwidth(t);
  return pcp > 0 ? SppcpBandwidth(t, k) / pcp : 0.0;
}

double CppcpBandwidth(const StepTimes& t, int k) {
  if (k < 1) k = 1;
  const double bottleneck =
      std::max({t.read(), t.compute() / k, t.write()});
  return bottleneck > 0 ? t.subtask_bytes / bottleneck : 0.0;
}

double CppcpIdealSpeedup(const StepTimes& t, int k) {
  const double pcp = PcpBandwidth(t);
  return pcp > 0 ? CppcpBandwidth(t, k) / pcp : 0.0;
}

int SppcpSaturationDisks(const StepTimes& t) {
  const double compute = t.compute();
  if (compute <= 0) return 1;
  return std::max(
      1, static_cast<int>(
             std::ceil(std::max(t.read(), t.write()) / compute)));
}

int CppcpSaturationThreads(const StepTimes& t) {
  const double io = std::max(t.read(), t.write());
  if (io <= 0) return 1;
  return std::max(1, static_cast<int>(std::ceil(t.compute() / io)));
}

bool IsCpuBound(const StepTimes& t) {
  return t.compute() >= std::max(t.read(), t.write());
}

const char* PrescriptionProcedureName(Prescription::Procedure procedure) {
  switch (procedure) {
    case Prescription::kSCP:
      return "SCP";
    case Prescription::kPCP:
      return "PCP";
    case Prescription::kSPPCP:
      return "S-PPCP";
    case Prescription::kCPPCP:
      return "C-PPCP";
  }
  return "unknown";
}

Prescription Prescribe(const StepTimes& t, double min_gain, int max_k) {
  Prescription p;
  p.cpu_bound = IsCpuBound(t);
  const double pcp = PcpBandwidth(t);
  if (p.cpu_bound) {
    p.procedure = Prescription::kCPPCP;
    p.k = CppcpSaturationThreads(t);
    if (max_k > 0) p.k = std::min(p.k, max_k);
    p.gain_vs_pcp = CppcpIdealSpeedup(t, p.k);
    p.reason =
        "compute (S2-S6) limits Eq. 2; Eq. 6 says k compute workers lift "
        "it until I/O saturates";
  } else {
    p.procedure = Prescription::kSPPCP;
    p.k = SppcpSaturationDisks(t);
    if (max_k > 0) p.k = std::min(p.k, max_k);
    p.gain_vs_pcp = SppcpIdealSpeedup(t, p.k);
    p.reason =
        "I/O limits Eq. 2; Eq. 4 says k striped devices lift it until "
        "compute saturates";
  }
  if (p.gain_vs_pcp < min_gain || pcp <= 0) {
    p.procedure = Prescription::kPCP;
    p.k = 1;
    p.gain_vs_pcp = 1.0;
    p.reason =
        "no stage-parallel variant beats Eq. 2 by the margin; stay on the "
        "3-stage pipeline";
  }
  return p;
}

namespace {

// Bandwidth of one job under its current allocation (Eq. 2/4/6; Eq. 1
// for jobs where pipelining is churn).
double AllocationBandwidth(const StepTimes& t, const FleetAllocation& a) {
  switch (a.prescription.procedure) {
    case Prescription::kSCP:
      return ScpBandwidth(t);
    case Prescription::kSPPCP:
      return SppcpBandwidth(t, a.lanes);
    case Prescription::kCPPCP:
      return CppcpBandwidth(t, a.workers);
    case Prescription::kPCP:
      break;
  }
  return PcpBandwidth(t);
}

void DemoteToFloor(const StepTimes& t, FleetAllocation* a) {
  a->lanes = 1;
  a->workers = 1;
  a->prescription.k = 1;
  if (t.total() <= 0 || PcpIdealSpeedup(t) < 1.02) {
    // Pipelining itself is churn (or the profile is empty): Eq. 1.
    a->prescription.procedure = Prescription::kSCP;
    a->prescription.gain_vs_pcp = 1.0;
    a->prescription.reason =
        "Eq. 3 gain under 2%; the 3-stage pipeline is churn here";
  } else {
    a->prescription.procedure = Prescription::kPCP;
    a->prescription.gain_vs_pcp = 1.0;
    a->prescription.reason =
        "fleet floor: 1 lane + 1 worker runs the Eq. 2 pipeline";
  }
}

}  // namespace

std::vector<FleetAllocation> PrescribeFleet(const std::vector<StepTimes>& jobs,
                                            const FleetBudget& budget,
                                            double min_gain) {
  std::vector<FleetAllocation> out(jobs.size());
  const int max_jobs =
      std::max(0, std::min(budget.io_lanes, budget.compute_workers));
  const size_t admitted = std::min(jobs.size(), size_t(max_jobs));

  // Floor pass: every admitted job holds 1 lane + 1 worker; overflow jobs
  // get k=0 so the caller knows to queue them.
  for (size_t i = 0; i < out.size(); i++) {
    if (i < admitted) {
      out[i].prescription.cpu_bound = IsCpuBound(jobs[i]);
      DemoteToFloor(jobs[i], &out[i]);
    } else {
      out[i].lanes = 0;
      out[i].workers = 0;
      out[i].prescription.k = 0;
      out[i].prescription.procedure = Prescription::kPCP;
      out[i].prescription.reason =
          "fleet budget exhausted: min(io_lanes, compute_workers) jobs "
          "already hold their floor";
    }
  }

  // Greedy upgrade pass: hand out remaining units one at a time to the
  // largest marginal bandwidth gain. A job's bottleneck regime fixes the
  // dimension it competes in (Eq. 4 wants lanes, Eq. 6 wants workers);
  // SCP-floored jobs are not upgraded (their pipeline gain is churn).
  std::vector<bool> eligible(admitted);
  for (size_t i = 0; i < admitted; i++) {
    eligible[i] = out[i].prescription.procedure != Prescription::kSCP &&
                  jobs[i].total() > 0;
  }
  while (true) {
    int free_lanes = budget.io_lanes;
    int free_workers = budget.compute_workers;
    for (size_t i = 0; i < admitted; i++) {
      free_lanes -= out[i].lanes;
      free_workers -= out[i].workers;
    }
    while (free_lanes > 0 || free_workers > 0) {
      double best_delta = 0;
      size_t best = admitted;
      bool best_is_lane = false;
      for (size_t i = 0; i < admitted; i++) {
        if (!eligible[i]) continue;
        const double now = AllocationBandwidth(jobs[i], out[i]);
        if (!out[i].prescription.cpu_bound && free_lanes > 0 &&
            out[i].lanes < SppcpSaturationDisks(jobs[i])) {
          const double next = SppcpBandwidth(jobs[i], out[i].lanes + 1);
          if (next - now > best_delta) {
            best_delta = next - now;
            best = i;
            best_is_lane = true;
          }
        }
        if (out[i].prescription.cpu_bound && free_workers > 0 &&
            out[i].workers < CppcpSaturationThreads(jobs[i])) {
          const double next = CppcpBandwidth(jobs[i], out[i].workers + 1);
          if (next - now > best_delta) {
            best_delta = next - now;
            best = i;
            best_is_lane = false;
          }
        }
      }
      if (best == admitted) break;  // nothing left worth a unit
      FleetAllocation& a = out[best];
      if (best_is_lane) {
        a.lanes++;
        free_lanes--;
        a.prescription.procedure = Prescription::kSPPCP;
        a.prescription.k = a.lanes;
        a.prescription.gain_vs_pcp = SppcpIdealSpeedup(jobs[best], a.lanes);
        a.prescription.reason =
            "fleet share of Eq. 4: lanes granted while their marginal "
            "bandwidth led the fleet";
      } else {
        a.workers++;
        free_workers--;
        a.prescription.procedure = Prescription::kCPPCP;
        a.prescription.k = a.workers;
        a.prescription.gain_vs_pcp = CppcpIdealSpeedup(jobs[best], a.workers);
        a.prescription.reason =
            "fleet share of Eq. 6: workers granted while their marginal "
            "bandwidth led the fleet";
      }
    }
    // Demotion pass: an upgrade that did not reach min_gain returns its
    // units (they may push another job past the bar, so loop).
    bool demoted = false;
    for (size_t i = 0; i < admitted; i++) {
      if (!eligible[i]) continue;
      if (out[i].prescription.procedure == Prescription::kPCP) continue;
      if (out[i].prescription.gain_vs_pcp < min_gain) {
        DemoteToFloor(jobs[i], &out[i]);
        eligible[i] = false;
        demoted = true;
      }
    }
    if (!demoted) break;
  }
  return out;
}

std::string Describe(const StepTimes& t) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "steps(ms/subtask): read=%.3f compute=%.3f write=%.3f  "
      "regime=%s  B_scp=%.1f MB/s  B_pcp=%.1f MB/s  ideal_speedup=%.2fx",
      t.read() * 1e3, t.compute() * 1e3, t.write() * 1e3,
      IsCpuBound(t) ? "CPU-bound" : "I/O-bound",
      ScpBandwidth(t) / (1024.0 * 1024.0),
      PcpBandwidth(t) / (1024.0 * 1024.0), PcpIdealSpeedup(t));
  return std::string(buf);
}

}  // namespace pipelsm::model
