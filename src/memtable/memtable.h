// MemTable: the LSM-tree's C0 component — an arena-backed skiplist of
// internal keys. Reference-counted because reads may hold the immutable
// memtable while it is being flushed to level 0.
#pragma once

#include <atomic>
#include <string>

#include "src/db/dbformat.h"
#include "src/memtable/skiplist.h"
#include "src/table/iterator.h"
#include "src/util/arena.h"

namespace pipelsm {

class MemTable {
 public:
  // MemTables are reference counted. The initial reference count is zero
  // and the caller must call Ref() at least once.
  explicit MemTable(const InternalKeyComparator& comparator);

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  void Ref() { refs_.fetch_add(1, std::memory_order_relaxed); }

  void Unref() {
    int prev = refs_.fetch_sub(1, std::memory_order_acq_rel);
    assert(prev >= 1);
    if (prev == 1) {
      delete this;
    }
  }

  // Approximate memory usage.
  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }

  // Iterator over the memtable's internal keys.
  Iterator* NewIterator();

  // Add an entry that maps key->value at the specified sequence number.
  // Typically value is empty for a deletion.
  void Add(SequenceNumber seq, ValueType type, const Slice& key,
           const Slice& value);

  // If the memtable contains a value for key, store it in *value and
  // return true. If it contains a deletion for key, store NotFound() in
  // *s and return true. Else return false. When the stored entry is a
  // value-log pointer (kTypeValuePointer), *value receives the raw
  // encoded vlog::ValueLocation and *is_pointer (if non-null) is set;
  // the caller resolves it.
  bool Get(const LookupKey& key, std::string* value, Status* s,
           bool* is_pointer = nullptr);

 private:
  friend class MemTableIterator;

  struct KeyComparator {
    const InternalKeyComparator comparator;
    explicit KeyComparator(const InternalKeyComparator& c) : comparator(c) {}
    int operator()(const char* a, const char* b) const;
  };

  typedef SkipList<const char*, KeyComparator> Table;

  ~MemTable();  // Private since only Unref() should be used to delete it

  KeyComparator comparator_;
  std::atomic<int> refs_;
  Arena arena_;
  Table table_;
};

}  // namespace pipelsm
