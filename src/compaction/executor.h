// CompactionExecutor: runs one planned compaction end to end.
//
// Four implementations reproduce the paper's procedures:
//   SCP    — the LevelDB baseline: sub-tasks strictly sequential, the
//            seven steps of each executed back to back (§III-A).
//   PCP    — 3-stage pipeline read/compute/write, one thread per stage,
//            bounded queues between stages (§III-B).
//   S-PPCP — PCP with k reader threads issuing S1 concurrently; pair with
//            a RAID0 device profile so transfers parallelize (§III-C.1).
//   C-PPCP — PCP with k compute workers; each sub-task's S2..S6 stays on
//            one worker; an ordered write stage restores key order
//            (§III-C.2).
//
// All four produce byte-identical output for the same input (tested), and
// fill a StepProfile whose per-step times feed the analytic model.
#pragma once

#include <memory>
#include <vector>

#include "src/compaction/types.h"
#include "src/db/options.h"

namespace pipelsm {

class Table;

class CompactionExecutor {
 public:
  virtual ~CompactionExecutor() = default;

  virtual const char* name() const = 0;

  // Plans sub-tasks from `inputs` and runs them to completion, writing
  // outputs through `sink` and accumulating step timings in *profile
  // (wall_nanos covers the whole run including planning).
  virtual Status Run(const CompactionJobOptions& options,
                     const std::vector<std::shared_ptr<Table>>& inputs,
                     CompactionSink* sink, StepProfile* profile) = 0;
};

// Factory. For kPCP/kSPPCP/kCPPCP the parallelism comes from
// CompactionJobOptions (read_parallelism / compute_parallelism).
std::unique_ptr<CompactionExecutor> NewCompactionExecutor(CompactionMode mode);

}  // namespace pipelsm
