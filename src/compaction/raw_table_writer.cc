#include "src/compaction/raw_table_writer.h"

#include "src/table/filter_block.h"
#include "src/table/filter_policy.h"
#include "src/table/format.h"
#include "src/util/coding.h"
#include "src/util/crc32c.h"

namespace pipelsm {

RawTableWriter::RawTableWriter(const CompactionJobOptions& options,
                               WritableFile* file)
    : options_(options), file_(file), index_block_(1) {}

Status RawTableWriter::AddBlock(const EncodedBlock& block) {
  BlockHandle handle;
  handle.set_offset(offset_);
  handle.set_size(block.payload.size() - kBlockTrailerSize);

  if (options_.filter_policy != nullptr && !block.filter.empty()) {
    filters_.emplace_back(offset_, block.filter);
  }

  Status s = file_->Append(block.payload);
  if (!s.ok()) return s;
  offset_ += block.payload.size();
  num_blocks_++;

  // Index entry: exact last key of the block (no separator shortening —
  // the next block's first key is not available to the write stage, and
  // exact keys are always a correct, if slightly larger, index).
  std::string handle_encoding;
  handle.EncodeTo(&handle_encoding);
  index_block_.Add(block.last_key, handle_encoding);
  return Status::OK();
}

Status RawTableWriter::WriteOwnBlock(const Slice& raw, BlockHandle* handle) {
  std::string compressed;
  const CompressionType type =
      CompressBlock(options_.compression, raw, &compressed);
  handle->set_offset(offset_);
  handle->set_size(compressed.size());
  Status s = file_->Append(compressed);
  if (!s.ok()) return s;

  char trailer[kBlockTrailerSize];
  trailer[0] = static_cast<char>(type);
  uint32_t crc = crc32c::Value(compressed.data(), compressed.size());
  crc = crc32c::Extend(crc, trailer, 1);
  EncodeFixed32(trailer + 1, crc32c::Mask(crc));
  s = file_->Append(Slice(trailer, kBlockTrailerSize));
  if (!s.ok()) return s;
  offset_ += compressed.size() + kBlockTrailerSize;
  return Status::OK();
}

std::string RawTableWriter::BuildFilterBlock() const {
  // Partitioned filter block, the same wire format FilterBlockBuilder
  // emits (src/table/filter_block.h). Each data block starts in exactly
  // one 2 KiB window, so window w carries the filter of the block
  // starting inside it; windows are grouped into partitions of roughly
  // filter_partition_bytes payload, each with its own offset array and
  // CRC, followed by the top index and tail.
  const uint64_t last_block_offset = filters_.back().first;
  const uint64_t windows = (last_block_offset >> kFilterBaseLg) + 1;
  const size_t partition_bytes = options_.filter_partition_bytes == 0
                                     ? kDefaultFilterPartitionBytes
                                     : options_.filter_partition_bytes;

  // A compressed block can be smaller than a window, so two blocks may
  // start in the same window. Their per-block filters cannot be merged
  // (bloom arrays of different sizes), and using either alone would give
  // the other block false negatives — so such windows get a small
  // match-all filter (every bit set): correctness preserved, the rare
  // shared window just loses its I/O-skipping benefit.
  static const char kMatchAll[] = {'\xff', '\xff', '\xff', '\xff', 1};

  std::string result;
  std::vector<FilterPartitionInfo> partitions;
  std::string partition_data;
  std::vector<uint32_t> window_offsets;  // within the open partition
  uint32_t partition_first_window = 0;

  const auto seal_partition = [&](uint64_t next_window) {
    if (window_offsets.empty()) return;
    FilterPartitionInfo info;
    info.first_window = partition_first_window;
    info.num_windows = static_cast<uint32_t>(window_offsets.size());
    info.offset = static_cast<uint32_t>(result.size());
    const uint32_t array_start = static_cast<uint32_t>(partition_data.size());
    for (uint32_t off : window_offsets) {
      PutFixed32(&partition_data, off);
    }
    PutFixed32(&partition_data, array_start);
    const uint32_t crc =
        crc32c::Value(partition_data.data(), partition_data.size());
    PutFixed32(&partition_data, crc32c::Mask(crc));
    info.size = static_cast<uint32_t>(partition_data.size());
    partitions.push_back(info);
    result.append(partition_data);
    partition_data.clear();
    window_offsets.clear();
    partition_first_window = static_cast<uint32_t>(next_window);
  };

  size_t next = 0;
  for (uint64_t w = 0; w < windows; w++) {
    window_offsets.push_back(static_cast<uint32_t>(partition_data.size()));
    size_t in_window = 0;
    while (next + in_window < filters_.size() &&
           (filters_[next + in_window].first >> kFilterBaseLg) == w) {
      in_window++;
    }
    if (in_window == 1) {
      partition_data.append(filters_[next].second);
    } else if (in_window > 1) {
      partition_data.append(kMatchAll, sizeof(kMatchAll));
    }
    next += in_window;
    if (partition_data.size() >= partition_bytes) {
      seal_partition(w + 1);
    }
  }
  seal_partition(windows);

  const uint32_t index_offset = static_cast<uint32_t>(result.size());
  for (const FilterPartitionInfo& p : partitions) {
    PutFixed32(&result, p.first_window);
    PutFixed32(&result, p.num_windows);
    PutFixed32(&result, p.offset);
    PutFixed32(&result, p.size);
  }
  PutFixed32(&result, index_offset);
  PutFixed32(&result, static_cast<uint32_t>(partitions.size()));
  result.push_back(static_cast<char>(kFilterBaseLg));
  return result;
}

Status RawTableWriter::Finish() {
  Status s;

  // Filter block (uncompressed, like TableBuilder's).
  BlockHandle filter_handle;
  const bool have_filter =
      options_.filter_policy != nullptr && !filters_.empty();
  if (have_filter) {
    const std::string filter_block = BuildFilterBlock();
    // Raw append with a kNoCompression trailer.
    filter_handle.set_offset(offset_);
    filter_handle.set_size(filter_block.size());
    s = file_->Append(filter_block);
    if (!s.ok()) return s;
    char trailer[kBlockTrailerSize];
    trailer[0] = static_cast<char>(CompressionType::kNoCompression);
    uint32_t crc = crc32c::Value(filter_block.data(), filter_block.size());
    crc = crc32c::Extend(crc, trailer, 1);
    EncodeFixed32(trailer + 1, crc32c::Mask(crc));
    s = file_->Append(Slice(trailer, kBlockTrailerSize));
    if (!s.ok()) return s;
    offset_ += filter_block.size() + kBlockTrailerSize;
  }

  // Metaindex block (points at the filter when present).
  BlockBuilder metaindex(options_.block_restart_interval);
  if (have_filter) {
    std::string key = "filter.";
    key.append(options_.filter_policy->Name());
    std::string handle_encoding;
    filter_handle.EncodeTo(&handle_encoding);
    metaindex.Add(key, handle_encoding);
  }
  BlockHandle metaindex_handle;
  s = WriteOwnBlock(metaindex.Finish(), &metaindex_handle);
  if (!s.ok()) return s;

  BlockHandle index_handle;
  s = WriteOwnBlock(index_block_.Finish(), &index_handle);
  if (!s.ok()) return s;

  Footer footer;
  footer.set_metaindex_handle(metaindex_handle);
  footer.set_index_handle(index_handle);
  std::string footer_encoding;
  footer.EncodeTo(&footer_encoding);
  s = file_->Append(footer_encoding);
  if (!s.ok()) return s;
  offset_ += footer_encoding.size();
  return file_->Flush();
}

}  // namespace pipelsm
