#include "src/compaction/raw_table_writer.h"

#include "src/table/filter_policy.h"
#include "src/table/format.h"
#include "src/util/coding.h"
#include "src/util/crc32c.h"

namespace pipelsm {

RawTableWriter::RawTableWriter(const CompactionJobOptions& options,
                               WritableFile* file)
    : options_(options), file_(file), index_block_(1) {}

Status RawTableWriter::AddBlock(const EncodedBlock& block) {
  BlockHandle handle;
  handle.set_offset(offset_);
  handle.set_size(block.payload.size() - kBlockTrailerSize);

  if (options_.filter_policy != nullptr && !block.filter.empty()) {
    filters_.emplace_back(offset_, block.filter);
  }

  Status s = file_->Append(block.payload);
  if (!s.ok()) return s;
  offset_ += block.payload.size();
  num_blocks_++;

  // Index entry: exact last key of the block (no separator shortening —
  // the next block's first key is not available to the write stage, and
  // exact keys are always a correct, if slightly larger, index).
  std::string handle_encoding;
  handle.EncodeTo(&handle_encoding);
  index_block_.Add(block.last_key, handle_encoding);
  return Status::OK();
}

Status RawTableWriter::WriteOwnBlock(const Slice& raw, BlockHandle* handle) {
  std::string compressed;
  const CompressionType type =
      CompressBlock(options_.compression, raw, &compressed);
  handle->set_offset(offset_);
  handle->set_size(compressed.size());
  Status s = file_->Append(compressed);
  if (!s.ok()) return s;

  char trailer[kBlockTrailerSize];
  trailer[0] = static_cast<char>(type);
  uint32_t crc = crc32c::Value(compressed.data(), compressed.size());
  crc = crc32c::Extend(crc, trailer, 1);
  EncodeFixed32(trailer + 1, crc32c::Mask(crc));
  s = file_->Append(Slice(trailer, kBlockTrailerSize));
  if (!s.ok()) return s;
  offset_ += compressed.size() + kBlockTrailerSize;
  return Status::OK();
}

std::string RawTableWriter::BuildFilterBlock() const {
  // FilterBlockBuilder wire format: [filter data][offset array (fixed32
  // per 2 KiB window)][array offset (fixed32)][base_lg (1 byte)].
  // Each data block starts in exactly one window (blocks are >= 2 KiB in
  // practice, and the reader only probes windows at real block offsets),
  // so window w carries the filter of the block starting inside it.
  static constexpr uint32_t kFilterBaseLg = 11;
  std::string result;
  std::vector<uint32_t> window_offsets;
  const uint64_t last_block_offset = filters_.back().first;
  const uint64_t windows = (last_block_offset >> kFilterBaseLg) + 1;

  // A compressed block can be smaller than a window, so two blocks may
  // start in the same window. Their per-block filters cannot be merged
  // (bloom arrays of different sizes), and using either alone would give
  // the other block false negatives — so such windows get a small
  // match-all filter (every bit set): correctness preserved, the rare
  // shared window just loses its I/O-skipping benefit.
  static const char kMatchAll[] = {'\xff', '\xff', '\xff', '\xff', 1};

  size_t next = 0;
  for (uint64_t w = 0; w < windows; w++) {
    window_offsets.push_back(static_cast<uint32_t>(result.size()));
    size_t in_window = 0;
    while (next + in_window < filters_.size() &&
           (filters_[next + in_window].first >> kFilterBaseLg) == w) {
      in_window++;
    }
    if (in_window == 1) {
      result.append(filters_[next].second);
    } else if (in_window > 1) {
      result.append(kMatchAll, sizeof(kMatchAll));
    }
    next += in_window;
  }

  const uint32_t array_offset = static_cast<uint32_t>(result.size());
  for (uint32_t off : window_offsets) {
    PutFixed32(&result, off);
  }
  PutFixed32(&result, array_offset);
  result.push_back(static_cast<char>(kFilterBaseLg));
  return result;
}

Status RawTableWriter::Finish() {
  Status s;

  // Filter block (uncompressed, like TableBuilder's).
  BlockHandle filter_handle;
  const bool have_filter =
      options_.filter_policy != nullptr && !filters_.empty();
  if (have_filter) {
    const std::string filter_block = BuildFilterBlock();
    // Raw append with a kNoCompression trailer.
    filter_handle.set_offset(offset_);
    filter_handle.set_size(filter_block.size());
    s = file_->Append(filter_block);
    if (!s.ok()) return s;
    char trailer[kBlockTrailerSize];
    trailer[0] = static_cast<char>(CompressionType::kNoCompression);
    uint32_t crc = crc32c::Value(filter_block.data(), filter_block.size());
    crc = crc32c::Extend(crc, trailer, 1);
    EncodeFixed32(trailer + 1, crc32c::Mask(crc));
    s = file_->Append(Slice(trailer, kBlockTrailerSize));
    if (!s.ok()) return s;
    offset_ += filter_block.size() + kBlockTrailerSize;
  }

  // Metaindex block (points at the filter when present).
  BlockBuilder metaindex(options_.block_restart_interval);
  if (have_filter) {
    std::string key = "filter.";
    key.append(options_.filter_policy->Name());
    std::string handle_encoding;
    filter_handle.EncodeTo(&handle_encoding);
    metaindex.Add(key, handle_encoding);
  }
  BlockHandle metaindex_handle;
  s = WriteOwnBlock(metaindex.Finish(), &metaindex_handle);
  if (!s.ok()) return s;

  BlockHandle index_handle;
  s = WriteOwnBlock(index_block_.Finish(), &index_handle);
  if (!s.ok()) return s;

  Footer footer;
  footer.set_metaindex_handle(metaindex_handle);
  footer.set_index_handle(index_handle);
  std::string footer_encoding;
  footer.EncodeTo(&footer_encoding);
  s = file_->Append(footer_encoding);
  if (!s.ok()) return s;
  offset_ += footer_encoding.size();
  return file_->Flush();
}

}  // namespace pipelsm
