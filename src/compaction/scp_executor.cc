// SCP: the Sequential Compaction Procedure (paper §III-A, Figure 3).
//
// Data blocks are scheduled in order; each sub-task's seven steps run back
// to back on the calling thread, so at any instant either the device or
// the CPU is idle — the inefficiency PCP removes. Equation 1:
//   B_scp = l / sum(t_S1..t_S7).
#include "src/compaction/executor.h"
#include "src/compaction/planner.h"
#include "src/compaction/steps.h"
#include "src/compaction/write_stage.h"

namespace pipelsm {

namespace {

class ScpExecutor final : public CompactionExecutor {
 public:
  const char* name() const override { return "SCP"; }

  Status Run(const CompactionJobOptions& options,
             const std::vector<std::shared_ptr<Table>>& inputs,
             CompactionSink* sink, StepProfile* profile) override {
    Stopwatch wall;
    std::vector<SubTaskPlan> plans;
    Status s = PlanSubTasks(options, inputs, &plans);
    if (!s.ok()) return s;

    WriteStage write_stage(options, sink);
    for (SubTaskPlan& plan : plans) {
      RawSubTask raw;
      s = ReadSubTask(options, inputs, std::move(plan), &raw, profile);  // S1
      if (!s.ok()) return s;

      ComputedSubTask computed;
      s = ComputeSubTask(options, std::move(raw), &computed);  // S2..S6
      if (!s.ok()) return s;
      profile->Merge(computed.profile);
      profile->input_bytes += computed.input_bytes;
      profile->output_bytes += computed.output_raw_bytes;

      s = write_stage.PushReordered(std::move(computed));  // S7
      if (!s.ok()) return s;
    }
    s = write_stage.Close();
    if (!s.ok()) return s;

    const StepProfile& wp = write_stage.profile();
    profile->nanos[kStepWrite] += wp.nanos[kStepWrite];
    profile->bytes[kStepWrite] += wp.bytes[kStepWrite];
    profile->wall_nanos += wall.ElapsedNanos();
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<CompactionExecutor> NewScpExecutor() {
  return std::make_unique<ScpExecutor>();
}

}  // namespace pipelsm
