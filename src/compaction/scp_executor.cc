// SCP: the Sequential Compaction Procedure (paper §III-A, Figure 3).
//
// Data blocks are scheduled in order; each sub-task's seven steps run back
// to back on the calling thread, so at any instant either the device or
// the CPU is idle — the inefficiency PCP removes. Equation 1:
//   B_scp = l / sum(t_S1..t_S7).
//
// SCP traces onto a single lane — the back-to-back S1 / S2-S6 / S7 spans
// make the serialization visually obvious next to a PCP trace.
#include "src/compaction/executor.h"
#include "src/compaction/planner.h"
#include "src/compaction/steps.h"
#include "src/compaction/write_stage.h"
#include "src/obs/event_listener.h"
#include "src/obs/pipeline_metrics.h"
#include "src/obs/trace.h"

namespace pipelsm {

namespace {

class ScpExecutor final : public CompactionExecutor {
 public:
  const char* name() const override { return "SCP"; }

  Status Run(const CompactionJobOptions& options,
             const std::vector<std::shared_ptr<Table>>& inputs,
             CompactionSink* sink, StepProfile* profile) override {
    Stopwatch wall;
    std::vector<SubTaskPlan> plans;
    Status s = PlanSubTasks(options, inputs, &plans);
    if (!s.ok()) return s;

    CompactionJobOptions job = options;
    obs::CompactionJobInfo* const info = job.job_info;
    if (info != nullptr) {
      info->executor = name();
      info->subtasks = plans.size();
      if (job.listeners != nullptr) {
        for (obs::EventListener* l : *job.listeners) {
          l->OnCompactionBegin(*info);
        }
      }
    }
    obs::TraceCollector* const trace = job.trace;
    if (trace != nullptr) {
      job.trace_pid = trace->BeginJob("SCP compaction (" +
                                      std::to_string(plans.size()) +
                                      " sub-tasks)");
      job.trace_write_lane = 0;
      trace->SetLaneName(job.trace_pid, 0, "S1-S7 sequential");
    }
    const uint32_t pid = job.trace_pid;

    obs::HistogramMetric* read_hist = nullptr;
    obs::HistogramMetric* compute_hist = nullptr;
    if (job.metrics != nullptr) {
      read_hist = job.metrics->RegisterHistogram(
          "compaction.subtask.read_micros", "S1 time per sub-task");
      compute_hist = job.metrics->RegisterHistogram(
          "compaction.subtask.compute_micros", "S2-S6 time per sub-task");
    }

    StepProfile run_profile;
    WriteStage write_stage(job, sink);
    for (SubTaskPlan& plan : plans) {
      const uint64_t seq = plan.seq;
      RawSubTask raw;
      {
        obs::TraceSpan span(trace, pid, 0, "S1 read", "read", seq);
        Stopwatch sw;
        s = ReadSubTask(job, inputs, std::move(plan), &raw,
                        &run_profile);  // S1
        if (read_hist != nullptr) read_hist->Observe(sw.ElapsedNanos() / 1e3);
      }
      if (!s.ok()) break;

      ComputedSubTask computed;
      {
        obs::TraceSpan span(trace, pid, 0, "S2-S6 compute", "compute", seq);
        Stopwatch sw;
        s = ComputeSubTask(job, std::move(raw), &computed);  // S2..S6
        if (compute_hist != nullptr) {
          compute_hist->Observe(sw.ElapsedNanos() / 1e3);
        }
      }
      if (!s.ok()) break;
      run_profile.Merge(computed.profile);
      run_profile.input_bytes += computed.input_bytes;
      run_profile.output_bytes += computed.output_raw_bytes;

      s = write_stage.PushReordered(std::move(computed));  // S7
      if (!s.ok()) break;
    }
    if (s.ok()) {
      s = write_stage.Close();
    }

    const StepProfile& wp = write_stage.profile();
    run_profile.nanos[kStepWrite] += wp.nanos[kStepWrite];
    run_profile.bytes[kStepWrite] += wp.bytes[kStepWrite];
    run_profile.wall_nanos += wall.ElapsedNanos();
    if (info != nullptr) {
      info->output_bytes = run_profile.output_bytes;
      info->profile = run_profile;
      info->wall_micros = run_profile.wall_nanos / 1000;
      info->status = s;
      if (job.listeners != nullptr) {
        for (obs::EventListener* l : *job.listeners) {
          l->OnCompactionCompleted(*info);
        }
      }
    }
    if (!s.ok()) return s;
    obs::AddStepMetrics(job.metrics, run_profile);
    profile->Merge(run_profile);
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<CompactionExecutor> NewScpExecutor() {
  return std::make_unique<ScpExecutor>();
}

}  // namespace pipelsm
