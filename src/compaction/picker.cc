#include "src/compaction/picker.h"

#include <algorithm>
#include <cassert>

#include "src/util/logging.h"

namespace pipelsm {

const char* CompactionStyleName(CompactionStyle style) {
  switch (style) {
    case CompactionStyle::kLeveled:
      return "leveled";
    case CompactionStyle::kTiered:
      return "tiered";
    case CompactionStyle::kLazyLeveling:
      return "lazy_leveling";
  }
  return "unknown";
}

CompactionPicker::~CompactionPicker() = default;

Compaction* CompactionPicker::MakeCompaction(VersionSet* vset, int level,
                                             int output_level) {
  Compaction* c = new Compaction(vset->options_, level, output_level);
  c->input_version_ = vset->current_;
  c->input_version_->Ref();
  return c;
}

namespace {

int64_t TotalFileSize(const std::vector<FileMetaData*>& files) {
  int64_t sum = 0;
  for (const FileMetaData* f : files) {
    sum += f->file_size;
  }
  return sum;
}

double PredictWriteAmp(const Compaction* c) {
  const int64_t in0 = TotalFileSize(c->inputs(0));
  if (in0 <= 0) return 1.0;
  return static_cast<double>(c->TotalInputBytes()) / static_cast<double>(in0);
}

}  // namespace

int CountRuns(const InternalKeyComparator& icmp,
              const std::vector<FileMetaData*>& files) {
  // Sweep files in smallest-key order (Version order) keeping the
  // multiset of largest keys still "open"; the max live set size is the
  // deepest stack of overlapping files, i.e. the number of sorted runs.
  if (files.empty()) return 0;
  // Inverted comparison: std::*_heap put the cmp-greatest element at
  // front, and the sweep must retire the SMALLEST still-open largest
  // key first (a min-heap), else closed intervals linger and the depth
  // overcounts pairwise-overlapping staircases.
  auto cmp = [&icmp](const InternalKey* a, const InternalKey* b) {
    return icmp.Compare(*a, *b) > 0;
  };
  std::vector<const InternalKey*> open;  // heap keyed on smallest largest
  int depth = 0;
  for (const FileMetaData* f : files) {
    while (!open.empty() && icmp.Compare(*open.front(), f->smallest) < 0) {
      std::pop_heap(open.begin(), open.end(), cmp);
      open.pop_back();
    }
    open.push_back(&f->largest);
    std::push_heap(open.begin(), open.end(), cmp);
    depth = std::max(depth, static_cast<int>(open.size()));
  }
  return depth;
}

namespace {

// ---------------------------------------------------------------------
// Leveled: the LevelDB size-ratio policy this repo seeded with, moved
// verbatim out of VersionSet::Finalize / PickCompaction. One run per
// level; a spill merges the picked file(s) with the overlapping files
// of the next level.
// ---------------------------------------------------------------------
class LeveledCompactionPicker final : public CompactionPicker {
 public:
  explicit LeveledCompactionPicker(const Options* options)
      : CompactionPicker(options) {}

  const char* Name() const override { return "LeveledCompactionPicker"; }
  CompactionStyle Style() const override {
    return CompactionStyle::kLeveled;
  }
  bool AllowsOverlappingLevels() const override { return false; }

  void ComputeScore(Version* v) const override {
    int best_level = -1;
    double best_score = -1;

    for (int level = 0; level < config::kNumLevels - 1; level++) {
      double score;
      if (level == 0) {
        // We treat level-0 specially by bounding the number of files
        // instead of number of bytes: with larger write-buffer sizes it
        // is nice not to do too many level-0 compactions, and the files
        // are merged on every read so we wish to avoid too many of them.
        score = Files(v, level).size() /
                static_cast<double>(config::kL0_CompactionTrigger);
      } else {
        // Compute the ratio of current size to size limit.
        const uint64_t level_bytes = TotalFileSize(Files(v, level));
        score = static_cast<double>(level_bytes) /
                MaxLevelBytes(VSet(v), level);
      }

      if (score > best_score) {
        best_level = level;
        best_score = score;
      }
    }

    SetScore(v, best_level, best_score);
  }

  Compaction* Pick(VersionSet* vset) override {
    Version* current = vset->current();
    if (!(Score(current) >= 1)) {
      return nullptr;
    }

    const int level = ScoreLevel(current);
    assert(level >= 0);
    assert(level + 1 < config::kNumLevels);
    Compaction* c = MakeCompaction(vset, level, level + 1);
    const InternalKeyComparator* icmp = vset->icmp();

    // Pick the first file that comes after compact_pointer_[level].
    for (FileMetaData* f : Files(current, level)) {
      if (CompactPointer(vset, level).empty() ||
          icmp->Compare(f->largest.Encode(), CompactPointer(vset, level)) >
              0) {
        MutableInputs(c, 0)->push_back(f);
        break;
      }
    }
    if (c->inputs(0).empty()) {
      // Wrap-around to the beginning of the key space.
      MutableInputs(c, 0)->push_back(Files(current, level)[0]);
    }

    // Files in level 0 may overlap each other, so pick up all overlapping
    // ones.
    if (level == 0) {
      InternalKey smallest, largest;
      GetInputRange(vset, c->inputs(0), &smallest, &largest);
      // Note that the next call will discard the file we placed in
      // inputs_[0] earlier and replace it with an overlapping set which
      // will include the picked file.
      current->GetOverlappingInputs(0, &smallest, &largest,
                                    MutableInputs(c, 0));
      assert(!c->inputs(0).empty());
    }

    SetupOtherInputs(vset, c);  // also fills predicted_write_amp_

    return c;
  }
};

// ---------------------------------------------------------------------
// Tiered: each level accumulates up to Options::tiered_run_count
// overlapping sorted runs; when a level reaches the cap its ENTIRE file
// set merges into one new run at the next level without touching
// resident data there (predicted write-amp 1.0). The last level, with
// nowhere to push, self-merges its runs back into one. Taking whole
// levels is what keeps newest-first file-number order valid: a partial
// pick could sink young data below older resident runs.
// ---------------------------------------------------------------------
class TieredCompactionPicker final : public CompactionPicker {
 public:
  explicit TieredCompactionPicker(const Options* options)
      : CompactionPicker(options) {}

  const char* Name() const override { return "TieredCompactionPicker"; }
  CompactionStyle Style() const override { return CompactionStyle::kTiered; }
  bool AllowsOverlappingLevels() const override { return true; }

  void ComputeScore(Version* v) const override {
    const double trigger = options_->tiered_run_count;
    int best_level = -1;
    double best_score = -1;
    for (int level = 0; level < config::kNumLevels; level++) {
      const std::vector<FileMetaData*>& files = Files(v, level);
      if (files.empty()) continue;
      double score =
          CountRuns(*VSet(v)->icmp(), files) / trigger;
      if (level == 0) {
        // A sequential load produces disjoint L0 flushes that never
        // stack past one run, yet the write-stall triggers count FILES;
        // keep the file-count trigger as a floor so L0 always drains
        // before the slowdown/stop thresholds.
        score = std::max(
            score, files.size() /
                       static_cast<double>(config::kL0_CompactionTrigger));
      }
      if (score > best_score) {
        best_level = level;
        best_score = score;
      }
    }
    SetScore(v, best_level, best_score);
  }

  Compaction* Pick(VersionSet* vset) override {
    Version* current = vset->current();
    if (!(Score(current) >= 1)) {
      return nullptr;
    }
    const int level = ScoreLevel(current);
    assert(level >= 0);
    // Push the whole level one down; the last level collapses in place.
    const int output_level =
        (level + 1 < config::kNumLevels) ? level + 1 : level;
    Compaction* c = MakeCompaction(vset, level, output_level);
    *MutableInputs(c, 0) = Files(current, level);
    SetPredictedWriteAmp(c, 1.0);  // no resident data is rewritten
    return c;
  }
};

// ---------------------------------------------------------------------
// Lazy leveling (Dostoevsky): tiered above, leveled at the largest
// occupied level. Upper levels push whole-level runs down at write-amp
// ~1; a push that lands ON the largest level merges with its
// overlapping residents so the biggest level — holding most of the data
// and answering most point/range reads — stays a single run.
// ---------------------------------------------------------------------
class LazyLevelingCompactionPicker final : public CompactionPicker {
 public:
  explicit LazyLevelingCompactionPicker(const Options* options)
      : CompactionPicker(options) {}

  const char* Name() const override {
    return "LazyLevelingCompactionPicker";
  }
  CompactionStyle Style() const override {
    return CompactionStyle::kLazyLeveling;
  }
  bool AllowsOverlappingLevels() const override { return true; }

  void ComputeScore(Version* v) const override {
    const double trigger = options_->tiered_run_count;
    const int last = LargestOccupiedLevel(v);
    int best_level = -1;
    double best_score = -1;
    for (int level = 0; level <= last; level++) {
      const std::vector<FileMetaData*>& files = Files(v, level);
      if (files.empty()) continue;
      double score;
      if (level == last && level > 0) {
        // The largest level is leveled: it spills (creating a new
        // largest level) only when over its size budget.
        if (level + 1 >= config::kNumLevels) continue;  // nowhere to go
        score = static_cast<double>(TotalFileSize(files)) /
                MaxLevelBytes(VSet(v), level);
      } else {
        score = CountRuns(*VSet(v)->icmp(), files) / trigger;
        if (level == 0) {
          // Same L0 file-count floor as tiered (see above).
          score = std::max(
              score, files.size() /
                         static_cast<double>(config::kL0_CompactionTrigger));
        }
      }
      if (score > best_score) {
        best_level = level;
        best_score = score;
      }
    }
    SetScore(v, best_level, best_score);
  }

  Compaction* Pick(VersionSet* vset) override {
    Version* current = vset->current();
    if (!(Score(current) >= 1)) {
      return nullptr;
    }
    const int level = ScoreLevel(current);
    assert(level >= 0);
    assert(level + 1 < config::kNumLevels);
    const int last = LargestOccupiedLevel(current);
    Compaction* c = MakeCompaction(vset, level, level + 1);
    *MutableInputs(c, 0) = Files(current, level);
    if (level + 1 >= last) {
      // Landing on (or spilling past) the largest level: merge with the
      // overlapping residents so it stays one sorted run.
      InternalKey smallest, largest;
      GetInputRange(vset, c->inputs(0), &smallest, &largest);
      current->GetOverlappingInputs(level + 1, &smallest, &largest,
                                    MutableInputs(c, 1));
    }
    SetPredictedWriteAmp(c, PredictWriteAmp(c));
    return c;
  }

 private:
  static int LargestOccupiedLevel(Version* v) {
    int last = 0;
    for (int level = config::kNumLevels - 1; level > 0; level--) {
      if (!Files(v, level).empty()) {
        last = level;
        break;
      }
    }
    return last;
  }
};

}  // namespace

std::unique_ptr<CompactionPicker> NewCompactionPicker(CompactionStyle style,
                                                      const Options* options) {
  switch (style) {
    case CompactionStyle::kTiered:
      return std::make_unique<TieredCompactionPicker>(options);
    case CompactionStyle::kLazyLeveling:
      return std::make_unique<LazyLevelingCompactionPicker>(options);
    case CompactionStyle::kLeveled:
      break;
  }
  return std::make_unique<LeveledCompactionPicker>(options);
}

}  // namespace pipelsm
