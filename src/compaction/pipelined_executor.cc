// The Pipelined Compaction Procedure and its parallel variants
// (paper §III-B/§III-C, Figures 4, 6 and 7).
//
// Three stages — read (S1), compute (S2..S6), write (S7) — joined by
// bounded queues ("between the adjacent stages we create a queue for data
// communication"). The generalized executor takes R reader threads and C
// compute threads:
//   PCP    = (R=1, C=1)
//   S-PPCP = (R=k, C=1)   + a striped device underneath
//   C-PPCP = (R=1, C=k)
// Out-of-order completion (any R>1 or C>1) is absorbed by the write
// stage's reorder buffer, so all variants emit byte-identical SSTables.
//
// Observability (src/obs): when the job carries a TraceCollector the run
// becomes one trace process with a lane per stage thread — S1/S2-S6/S7
// spans per sub-task plus "stall" spans wherever a lane blocked on an
// inter-stage queue, i.e. a live rendering of the paper's Fig. 4. When it
// carries a MetricsRegistry, queue stall totals and per-step times are
// published under the names in docs/OBSERVABILITY.md.
#include <atomic>
#include <mutex>
#include <thread>

#include "src/compaction/executor.h"
#include "src/compaction/planner.h"
#include "src/compaction/steps.h"
#include "src/compaction/write_stage.h"
#include "src/obs/event_listener.h"
#include "src/obs/pipeline_metrics.h"
#include "src/obs/trace.h"
#include "src/util/bounded_queue.h"

namespace pipelsm {

namespace {

// Queue waits shorter than this are scheduling noise, not pipeline
// stalls; emitting them would bury the trace in micro-spans.
constexpr uint64_t kMinStallSpanNanos = 10 * 1000;

// Wraps a blocking queue operation in a "stall" trace span (dropped again
// if the wait was shorter than kMinStallSpanNanos).
template <typename Op>
auto TracedWait(obs::TraceCollector* trace, uint32_t pid, uint32_t lane,
                const char* name, Op op) {
  if (trace == nullptr) return op();
  const uint64_t start = trace->NowNanos();
  auto result = op();
  const uint64_t end = trace->NowNanos();
  if (end - start >= kMinStallSpanNanos) {
    trace->AddSpan(pid, lane, name, "stall", start, end,
                   obs::TraceCollector::kNoSeq);
  }
  return result;
}

class PipelinedExecutor final : public CompactionExecutor {
 public:
  explicit PipelinedExecutor(const char* name) : name_(name) {}

  const char* name() const override { return name_; }

  Status Run(const CompactionJobOptions& options,
             const std::vector<std::shared_ptr<Table>>& inputs,
             CompactionSink* sink, StepProfile* profile) override {
    Stopwatch wall;
    std::vector<SubTaskPlan> plans;
    Status s = PlanSubTasks(options, inputs, &plans);
    if (!s.ok()) return s;

    const int num_readers = std::max(1, options.read_parallelism);
    const int num_computers = std::max(1, options.compute_parallelism);
    const size_t depth = std::max<size_t>(1, options.queue_depth);

    // Trace lanes: 0 = write stage (this thread), then readers, then
    // compute workers. The executor's private copy of the job options
    // carries pid/lane down into the write stage.
    CompactionJobOptions job = options;
    obs::TraceCollector* const trace = job.trace;
    if (trace != nullptr) {
      job.trace_pid = trace->BeginJob(std::string(name_) + " compaction (" +
                                      std::to_string(plans.size()) +
                                      " sub-tasks)");
      job.trace_write_lane = 0;
      trace->SetLaneName(job.trace_pid, 0, "S7 write");
      for (int r = 0; r < num_readers; r++) {
        trace->SetLaneName(job.trace_pid, 1 + r,
                           "S1 read " + std::to_string(r));
      }
      for (int c = 0; c < num_computers; c++) {
        trace->SetLaneName(job.trace_pid, 1 + num_readers + c,
                           "S2-S6 compute " + std::to_string(c));
      }
    }
    const uint32_t pid = job.trace_pid;

    obs::CompactionJobInfo* const info = job.job_info;
    if (info != nullptr) {
      info->executor = name_;
      info->subtasks = plans.size();
      if (job.listeners != nullptr) {
        for (obs::EventListener* l : *job.listeners) {
          l->OnCompactionBegin(*info);
        }
      }
    }

    obs::HistogramMetric* read_hist = nullptr;
    obs::HistogramMetric* compute_hist = nullptr;
    if (job.metrics != nullptr) {
      read_hist = job.metrics->RegisterHistogram(
          "compaction.subtask.read_micros", "S1 time per sub-task");
      compute_hist = job.metrics->RegisterHistogram(
          "compaction.subtask.compute_micros", "S2-S6 time per sub-task");
    }

    BoundedQueue<RawSubTask> read_q(depth);
    BoundedQueue<ComputedSubTask> write_q(depth);

    std::mutex error_mu;
    Status first_error;
    auto record_error = [&](const Status& err) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error.ok()) first_error = err;
      read_q.Close();
      write_q.Close();
    };
    auto failed = [&]() {
      std::lock_guard<std::mutex> lock(error_mu);
      return !first_error.ok();
    };

    // Per-thread profiles, merged at the end.
    std::vector<StepProfile> reader_profiles(num_readers);
    std::vector<StepProfile> computer_profiles(num_computers);

    // ---- stage read (S1): R reader threads pull plan indices. ----
    std::atomic<size_t> next_plan{0};
    std::atomic<int> readers_left{num_readers};
    std::vector<std::thread> threads;
    for (int r = 0; r < num_readers; r++) {
      threads.emplace_back([&, r] {
        const uint32_t lane = 1 + r;
        for (;;) {
          const size_t i = next_plan.fetch_add(1, std::memory_order_relaxed);
          if (i >= plans.size() || failed()) break;
          const uint64_t seq = plans[i].seq;
          RawSubTask raw;
          Status rs;
          {
            obs::TraceSpan span(trace, pid, lane, "S1 read", "read", seq);
            Stopwatch sw;
            rs = ReadSubTask(job, inputs, plans[i], &raw,
                             &reader_profiles[r]);
            if (read_hist != nullptr) {
              read_hist->Observe(sw.ElapsedNanos() / 1000.0);
            }
          }
          if (!rs.ok()) {
            record_error(rs);
            break;
          }
          // A false Push hands `raw` back (the queue never drops work);
          // it only happens on the error/close path, where the sub-task
          // is intentionally abandoned.
          if (!TracedWait(trace, pid, lane, "wait:read_q.push", [&] {
                return read_q.Push(std::move(raw));
              })) {
            break;
          }
        }
        if (readers_left.fetch_sub(1) == 1) {
          read_q.Close();
        }
      });
    }

    // ---- stage compute (S2..S6): C worker threads. ----
    std::atomic<int> computers_left{num_computers};
    for (int c = 0; c < num_computers; c++) {
      threads.emplace_back([&, c] {
        const uint32_t lane = 1 + num_readers + c;
        for (;;) {
          auto item = TracedWait(trace, pid, lane, "wait:read_q.pop",
                                 [&] { return read_q.Pop(); });
          if (!item.has_value()) break;  // drained + closed
          const uint64_t seq = item->plan.seq;
          ComputedSubTask computed;
          Status cs;
          {
            obs::TraceSpan span(trace, pid, lane, "S2-S6 compute", "compute",
                                seq);
            Stopwatch sw;
            cs = ComputeSubTask(job, std::move(*item), &computed);
            if (compute_hist != nullptr) {
              compute_hist->Observe(sw.ElapsedNanos() / 1000.0);
            }
          }
          if (!cs.ok()) {
            record_error(cs);
            break;
          }
          computer_profiles[c].Merge(computed.profile);
          computed.profile = StepProfile{};  // avoid double counting
          // Same contract as the reader's Push above.
          if (!TracedWait(trace, pid, lane, "wait:write_q.push", [&] {
                return write_q.Push(std::move(computed));
              })) {
            break;
          }
        }
        if (computers_left.fetch_sub(1) == 1) {
          write_q.Close();
        }
      });
    }

    // ---- stage write (S7): this thread, in sub-task order. ----
    WriteStage write_stage(job, sink);
    uint64_t input_bytes = 0;
    uint64_t output_bytes = 0;
    for (;;) {
      auto item = TracedWait(trace, pid, 0, "wait:write_q.pop",
                             [&] { return write_q.Pop(); });
      if (!item.has_value()) break;
      input_bytes += item->input_bytes;
      output_bytes += item->output_raw_bytes;
      Status ws = write_stage.PushReordered(std::move(*item));
      if (!ws.ok()) {
        record_error(ws);
        break;
      }
    }

    for (auto& t : threads) {
      t.join();
    }

    // Pipeline telemetry is published even for failed runs — a stall
    // profile of the run that broke is exactly what the postmortem needs.
    if (job.metrics != nullptr) {
      obs::AddQueueMetrics(job.metrics, "read", read_q.stats());
      obs::AddQueueMetrics(job.metrics, "write", write_q.stats());
    }

    {
      std::lock_guard<std::mutex> lock(error_mu);
      s = first_error;
    }
    // On a clean shutdown every queue must be empty: readers closed
    // read_q only after the last plan, computers drained it before
    // closing write_q, and this thread drained write_q. Anything left
    // means a stage dropped out early without recording an error.
    if (s.ok() && (read_q.size() != 0 || write_q.size() != 0)) {
      s = Status::Corruption("pipeline queues not drained at shutdown");
    }
    if (s.ok()) {
      s = write_stage.Close();
    }

    // Assemble this run's profile separately so the published metrics
    // cover exactly this compaction even if the caller's *profile is an
    // accumulator. Assembled on failures too: the Completed event below
    // reports whatever was measured before the run broke.
    StepProfile run_profile;
    for (const StepProfile& p : reader_profiles) run_profile.Merge(p);
    for (const StepProfile& p : computer_profiles) run_profile.Merge(p);
    const StepProfile& wp = write_stage.profile();
    run_profile.nanos[kStepWrite] += wp.nanos[kStepWrite];
    run_profile.bytes[kStepWrite] += wp.bytes[kStepWrite];
    run_profile.input_bytes += input_bytes;
    run_profile.output_bytes += output_bytes;
    run_profile.wall_nanos += wall.ElapsedNanos();
    if (info != nullptr) {
      info->output_bytes = run_profile.output_bytes;
      info->profile = run_profile;
      info->wall_micros = run_profile.wall_nanos / 1000;
      info->status = s;
      if (job.listeners != nullptr) {
        for (obs::EventListener* l : *job.listeners) {
          l->OnCompactionCompleted(*info);
        }
      }
    }
    if (!s.ok()) return s;
    obs::AddStepMetrics(job.metrics, run_profile);
    profile->Merge(run_profile);
    return Status::OK();
  }

 private:
  const char* const name_;
};

}  // namespace

std::unique_ptr<CompactionExecutor> NewScpExecutor();  // scp_executor.cc

std::unique_ptr<CompactionExecutor> NewCompactionExecutor(
    CompactionMode mode) {
  switch (mode) {
    case CompactionMode::kSCP:
      return NewScpExecutor();
    case CompactionMode::kPCP:
      return std::make_unique<PipelinedExecutor>("PCP");
    case CompactionMode::kSPPCP:
      return std::make_unique<PipelinedExecutor>("S-PPCP");
    case CompactionMode::kCPPCP:
      return std::make_unique<PipelinedExecutor>("C-PPCP");
  }
  return nullptr;
}

const char* CompactionModeName(CompactionMode mode) {
  switch (mode) {
    case CompactionMode::kSCP:
      return "SCP";
    case CompactionMode::kPCP:
      return "PCP";
    case CompactionMode::kSPPCP:
      return "S-PPCP";
    case CompactionMode::kCPPCP:
      return "C-PPCP";
  }
  return "unknown";
}

}  // namespace pipelsm
