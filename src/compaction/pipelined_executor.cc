// The Pipelined Compaction Procedure and its parallel variants
// (paper §III-B/§III-C, Figures 4, 6 and 7).
//
// Three stages — read (S1), compute (S2..S6), write (S7) — joined by
// bounded queues ("between the adjacent stages we create a queue for data
// communication"). The generalized executor takes R reader threads and C
// compute threads:
//   PCP    = (R=1, C=1)
//   S-PPCP = (R=k, C=1)   + a striped device underneath
//   C-PPCP = (R=1, C=k)
// Out-of-order completion (any R>1 or C>1) is absorbed by the write
// stage's reorder buffer, so all variants emit byte-identical SSTables.
#include <atomic>
#include <mutex>
#include <thread>

#include "src/compaction/executor.h"
#include "src/compaction/planner.h"
#include "src/compaction/steps.h"
#include "src/compaction/write_stage.h"
#include "src/util/bounded_queue.h"

namespace pipelsm {

namespace {

class PipelinedExecutor final : public CompactionExecutor {
 public:
  explicit PipelinedExecutor(const char* name) : name_(name) {}

  const char* name() const override { return name_; }

  Status Run(const CompactionJobOptions& options,
             const std::vector<std::shared_ptr<Table>>& inputs,
             CompactionSink* sink, StepProfile* profile) override {
    Stopwatch wall;
    std::vector<SubTaskPlan> plans;
    Status s = PlanSubTasks(options, inputs, &plans);
    if (!s.ok()) return s;

    const int num_readers = std::max(1, options.read_parallelism);
    const int num_computers = std::max(1, options.compute_parallelism);
    const size_t depth = std::max<size_t>(1, options.queue_depth);

    BoundedQueue<RawSubTask> read_q(depth);
    BoundedQueue<ComputedSubTask> write_q(depth);

    std::mutex error_mu;
    Status first_error;
    auto record_error = [&](const Status& err) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error.ok()) first_error = err;
      read_q.Close();
      write_q.Close();
    };
    auto failed = [&]() {
      std::lock_guard<std::mutex> lock(error_mu);
      return !first_error.ok();
    };

    // Per-thread profiles, merged at the end.
    std::vector<StepProfile> reader_profiles(num_readers);
    std::vector<StepProfile> computer_profiles(num_computers);

    // ---- stage read (S1): R reader threads pull plan indices. ----
    std::atomic<size_t> next_plan{0};
    std::atomic<int> readers_left{num_readers};
    std::vector<std::thread> threads;
    for (int r = 0; r < num_readers; r++) {
      threads.emplace_back([&, r] {
        for (;;) {
          const size_t i = next_plan.fetch_add(1, std::memory_order_relaxed);
          if (i >= plans.size() || failed()) break;
          RawSubTask raw;
          Status rs = ReadSubTask(options, inputs, plans[i], &raw,
                                  &reader_profiles[r]);
          if (!rs.ok()) {
            record_error(rs);
            break;
          }
          if (!read_q.Push(std::move(raw))) break;  // closed: error path
        }
        if (readers_left.fetch_sub(1) == 1) {
          read_q.Close();
        }
      });
    }

    // ---- stage compute (S2..S6): C worker threads. ----
    std::atomic<int> computers_left{num_computers};
    for (int c = 0; c < num_computers; c++) {
      threads.emplace_back([&, c] {
        for (;;) {
          auto item = read_q.Pop();
          if (!item.has_value()) break;  // drained + closed
          ComputedSubTask computed;
          Status cs = ComputeSubTask(options, std::move(*item), &computed);
          if (!cs.ok()) {
            record_error(cs);
            break;
          }
          computer_profiles[c].Merge(computed.profile);
          computed.profile = StepProfile{};  // avoid double counting
          if (!write_q.Push(std::move(computed))) break;
        }
        if (computers_left.fetch_sub(1) == 1) {
          write_q.Close();
        }
      });
    }

    // ---- stage write (S7): this thread, in sub-task order. ----
    WriteStage write_stage(options, sink);
    uint64_t input_bytes = 0;
    uint64_t output_bytes = 0;
    for (;;) {
      auto item = write_q.Pop();
      if (!item.has_value()) break;
      input_bytes += item->input_bytes;
      output_bytes += item->output_raw_bytes;
      Status ws = write_stage.PushReordered(std::move(*item));
      if (!ws.ok()) {
        record_error(ws);
        break;
      }
    }

    for (auto& t : threads) {
      t.join();
    }

    {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error.ok()) return first_error;
    }
    s = write_stage.Close();
    if (!s.ok()) return s;

    for (const StepProfile& p : reader_profiles) profile->Merge(p);
    for (const StepProfile& p : computer_profiles) profile->Merge(p);
    const StepProfile& wp = write_stage.profile();
    profile->nanos[kStepWrite] += wp.nanos[kStepWrite];
    profile->bytes[kStepWrite] += wp.bytes[kStepWrite];
    profile->input_bytes += input_bytes;
    profile->output_bytes += output_bytes;
    profile->wall_nanos += wall.ElapsedNanos();
    return Status::OK();
  }

 private:
  const char* const name_;
};

}  // namespace

std::unique_ptr<CompactionExecutor> NewScpExecutor();  // scp_executor.cc

std::unique_ptr<CompactionExecutor> NewCompactionExecutor(
    CompactionMode mode) {
  switch (mode) {
    case CompactionMode::kSCP:
      return NewScpExecutor();
    case CompactionMode::kPCP:
      return std::make_unique<PipelinedExecutor>("PCP");
    case CompactionMode::kSPPCP:
      return std::make_unique<PipelinedExecutor>("S-PPCP");
    case CompactionMode::kCPPCP:
      return std::make_unique<PipelinedExecutor>("C-PPCP");
  }
  return nullptr;
}

const char* CompactionModeName(CompactionMode mode) {
  switch (mode) {
    case CompactionMode::kSCP:
      return "SCP";
    case CompactionMode::kPCP:
      return "PCP";
    case CompactionMode::kSPPCP:
      return "S-PPCP";
    case CompactionMode::kCPPCP:
      return "C-PPCP";
  }
  return "unknown";
}

}  // namespace pipelsm
