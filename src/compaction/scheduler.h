// CompactionScheduler: the advisor's verdict, acted on.
//
// PR 2's BottleneckAdvisor evaluates the paper's Eqs. 1-7 on a decayed
// profile of completed compactions and *reports* which procedure §III-C
// prescribes. This class closes that loop: at every compaction admission
// the DB asks it which executor (SCP / PCP / S-PPCP / C-PPCP) and which
// parallelism degree k the *current* profile calls for, so the procedure
// tracks workload shifts (value size, compressibility, device regime)
// instead of freezing at DB::Open. The paper's own evaluation is the
// motivation: the best procedure flips between S-PPCP and C-PPCP as the
// pipeline moves between I/O- and CPU-bound (Figures 6 and 12).
//
// Decision rule per admission, on the advisor's decayed StepTimes t:
//   1. Before `warmup_jobs` completed compactions (or with adaptive off)
//      the static Options choice applies verbatim.
//   2. model::Prescribe(t) picks S-PPCP/C-PPCP at the Eq. 4/6 saturation
//      k — clamped into [min,max] stripe width / compute workers — or
//      plain PCP when neither parallel variant's ideal gain reaches
//      `min_gain`.
//   3. If even pipelining gains ~nothing (Eq. 3 speedup below
//      kMinPipelineGain: one stage is essentially the whole job), SCP is
//      chosen — a pipeline that cannot overlap anything only pays queue
//      handoff costs.
//   4. Hysteresis: a choice that differs from the current one must be
//      prescribed on `hysteresis_jobs` *consecutive* admissions before
//      the scheduler switches, so one noisy profile cannot flap the
//      pipeline shape.
//
// Thread-safe: Admit (background compaction thread) and ToJson
// (GetProperty("pipelsm.scheduler"), any thread) may race.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "src/db/options.h"
#include "src/model/model.h"

namespace pipelsm {

namespace obs {
class Counter;
class MetricsRegistry;
}  // namespace obs

struct SchedulerOptions {
  bool adaptive = false;

  // The static configuration, used before warmup / with adaptive off.
  CompactionMode static_mode = CompactionMode::kPCP;
  int static_read_parallelism = 1;
  int static_compute_parallelism = 1;

  // Bounds on the k the scheduler may choose (Options::min/max_*).
  int min_compute_workers = 1;
  int max_compute_workers = 4;
  int min_stripe_width = 1;
  int max_stripe_width = 4;

  int hysteresis_jobs = 3;
  int warmup_jobs = 2;
  double min_gain = 1.1;

  static SchedulerOptions FromOptions(const Options& options);
};

// One per-job verdict. `read_parallelism`/`compute_parallelism` are the
// values the executor must be handed via CompactionJobOptions — per-job
// inputs, never read back from mutable shared state mid-run.
struct SchedulerDecision {
  CompactionMode mode = CompactionMode::kPCP;
  int read_parallelism = 1;
  int compute_parallelism = 1;
  bool adaptive = false;     // false: static config or warmup fallback
  std::string rationale;     // one line for EVENT adaptive_decision / info
};

// What one engine tells a fleet-level governor when it wants to compact.
struct CompactionAdmissionRequest {
  int shard_id = -1;                // Options::shard_id (-1: unsharded)
  model::StepTimes profile;         // advisor's decayed per-step times
  uint64_t advisor_jobs = 0;        // jobs the advisor has digested
  int level = 0;                    // compaction input level (-1 for GC)
  uint64_t input_bytes = 0;         // sum of input file sizes
  // Picker-predicted bytes-written amplification of the job
  // (docs/COMPACTION.md): ~1 for tiered pushes, (src+overlap)/src for
  // leveled spills. Lets a fleet governor weigh cheap reclamation
  // against expensive rewrites when ordering its queue.
  double predicted_write_amp = 1.0;
  // Value-log garbage collection (docs/VALUE_LOG.md): competes for the
  // same lane/worker budget as compactions but ranks below every
  // non-forced compaction — reclaiming dead value bytes is maintenance,
  // shrinking read amplification is not.
  bool is_gc = false;
};

// The governor's answer. `granted == false` means the engine must yield
// the admission slot (its background loop re-schedules); on success the
// engine runs `decision` and MUST call Release(id) when the job — or its
// failure path — finishes.
struct CompactionGrant {
  bool granted = false;
  uint64_t id = 0;
  SchedulerDecision decision;
};

// Fleet-level compaction admission. One instance is shared by every
// engine in a ShardedDB (Options::compaction_governor); each engine's
// background thread blocks in Admit() until the governor hands it a
// budget share or `abort` returns true. Implementations must be
// thread-safe and must not call back into any DB.
class CompactionGovernor {
 public:
  virtual ~CompactionGovernor();

  // Blocks until a grant is available or `abort()` turns true (polled at
  // implementation-defined intervals; the caller passes e.g. "DB is
  // shutting down or a flush is pending"). Never holds DB mutexes.
  virtual CompactionGrant Admit(const CompactionAdmissionRequest& request,
                                const std::function<bool()>& abort) = 0;

  // Returns the grant's lanes/workers to the pool. Must tolerate ids
  // from grants already released (no-op) but is called exactly once per
  // successful Admit.
  virtual void Release(uint64_t grant_id) = 0;
};

class CompactionScheduler {
 public:
  // `metrics` (nullable) receives scheduler.* counters: decisions,
  // switches, and per-procedure choice counts.
  CompactionScheduler(const SchedulerOptions& options,
                      obs::MetricsRegistry* metrics);

  CompactionScheduler(const CompactionScheduler&) = delete;
  CompactionScheduler& operator=(const CompactionScheduler&) = delete;

  // Called once per admitted compaction job with the advisor's decayed
  // profile and how many jobs it has digested. Deterministic given the
  // same profile sequence.
  SchedulerDecision Admit(const model::StepTimes& profile,
                          uint64_t advisor_jobs);

  uint64_t decisions() const;
  uint64_t switches() const;

  // The GetProperty("pipelsm.scheduler") payload (docs/TUNING.md):
  // current choice, pending candidate + streak, decision/switch counts.
  std::string ToJson() const;

 private:
  struct Choice {
    CompactionMode mode = CompactionMode::kPCP;
    int read_parallelism = 1;
    int compute_parallelism = 1;

    bool operator==(const Choice& o) const {
      return mode == o.mode && read_parallelism == o.read_parallelism &&
             compute_parallelism == o.compute_parallelism;
    }
    bool operator!=(const Choice& o) const { return !(*this == o); }
  };

  // The §III-C target for one profile, bounds applied (no hysteresis).
  Choice Target(const model::StepTimes& t, std::string* why) const;

  SchedulerDecision Render(const Choice& choice, bool adaptive,
                           std::string rationale) const;

  const SchedulerOptions opts_;

  mutable std::mutex mu_;
  Choice current_;           // what jobs run as right now
  Choice candidate_;         // differing target accumulating a streak
  int candidate_streak_ = 0; // consecutive admissions prescribing it
  uint64_t decisions_ = 0;
  uint64_t switches_ = 0;
  std::string last_rationale_;

  obs::Counter* decisions_counter_ = nullptr;
  obs::Counter* switches_counter_ = nullptr;
  obs::Counter* mode_counters_[4] = {nullptr, nullptr, nullptr, nullptr};
};

}  // namespace pipelsm
