#include "src/compaction/scheduler.h"

#include <algorithm>
#include <cstdio>

#include "src/obs/metrics.h"

namespace pipelsm {

namespace {

// Below this Eq. 3 ideal speedup, pipelining overlaps essentially
// nothing (one stage is the whole job) and only pays queue handoffs; the
// scheduler falls back to the sequential procedure.
constexpr double kMinPipelineGain = 1.02;

constexpr const char* kModeMetricNames[4] = {
    "scheduler.choice.scp", "scheduler.choice.pcp",
    "scheduler.choice.sppcp", "scheduler.choice.cppcp"};

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

}  // namespace

// Key the vtable here so every TU sharing the interface agrees on one
// definition.
CompactionGovernor::~CompactionGovernor() = default;

SchedulerOptions SchedulerOptions::FromOptions(const Options& options) {
  SchedulerOptions s;
  s.adaptive = options.adaptive_compaction;
  s.static_mode = options.compaction_mode;
  s.static_read_parallelism = std::max(1, options.io_parallelism);
  s.static_compute_parallelism = std::max(1, options.compute_parallelism);
  s.min_compute_workers = std::max(1, options.min_compute_workers);
  s.max_compute_workers =
      std::max(s.min_compute_workers, options.max_compute_workers);
  s.min_stripe_width = std::max(1, options.min_stripe_width);
  s.max_stripe_width = std::max(s.min_stripe_width, options.max_stripe_width);
  s.hysteresis_jobs = std::max(1, options.scheduler_hysteresis_jobs);
  s.warmup_jobs = std::max(0, options.scheduler_warmup_jobs);
  s.min_gain = std::max(1.0, options.scheduler_min_gain);
  return s;
}

CompactionScheduler::CompactionScheduler(const SchedulerOptions& options,
                                         obs::MetricsRegistry* metrics)
    : opts_(options) {
  current_.mode = opts_.static_mode;
  current_.read_parallelism = opts_.static_read_parallelism;
  current_.compute_parallelism = opts_.static_compute_parallelism;
  last_rationale_ = opts_.adaptive ? "no admissions yet"
                                   : "adaptive_compaction off; static choice";
  if (metrics != nullptr) {
    decisions_counter_ = metrics->RegisterCounter(
        "scheduler.decisions", "compaction admissions the scheduler ruled on");
    switches_counter_ = metrics->RegisterCounter(
        "scheduler.switches",
        "executor/parallelism changes after the hysteresis window filled");
    for (int m = 0; m < 4; m++) {
      mode_counters_[m] = metrics->RegisterCounter(
          kModeMetricNames[m], std::string("jobs admitted as ") +
                                   CompactionModeName(CompactionMode(m)));
    }
  }
}

CompactionScheduler::Choice CompactionScheduler::Target(
    const model::StepTimes& t, std::string* why) const {
  Choice c;
  if (model::PcpIdealSpeedup(t) < kMinPipelineGain) {
    c.mode = CompactionMode::kSCP;
    *why = "Eq. 3 speedup ~1: one stage is the whole job, pipelining only "
           "pays queue handoffs";
    return c;
  }
  const bool cpu_bound = model::IsCpuBound(t);
  const int max_k =
      cpu_bound ? opts_.max_compute_workers : opts_.max_stripe_width;
  const model::Prescription p = model::Prescribe(t, opts_.min_gain, max_k);
  *why = p.reason;
  switch (p.procedure) {
    case model::Prescription::kSCP:
      c.mode = CompactionMode::kSCP;
      break;
    case model::Prescription::kPCP:
      c.mode = CompactionMode::kPCP;
      break;
    case model::Prescription::kSPPCP:
      c.mode = CompactionMode::kSPPCP;
      c.read_parallelism = std::clamp(p.k, opts_.min_stripe_width,
                                      opts_.max_stripe_width);
      break;
    case model::Prescription::kCPPCP:
      c.mode = CompactionMode::kCPPCP;
      c.compute_parallelism = std::clamp(p.k, opts_.min_compute_workers,
                                         opts_.max_compute_workers);
      break;
  }
  return c;
}

SchedulerDecision CompactionScheduler::Render(const Choice& choice,
                                              bool adaptive,
                                              std::string rationale) const {
  SchedulerDecision d;
  d.mode = choice.mode;
  d.read_parallelism = choice.read_parallelism;
  d.compute_parallelism = choice.compute_parallelism;
  d.adaptive = adaptive;
  d.rationale = std::move(rationale);
  if (decisions_counter_ != nullptr) decisions_counter_->Add();
  if (mode_counters_[int(choice.mode)] != nullptr) {
    mode_counters_[int(choice.mode)]->Add();
  }
  return d;
}

SchedulerDecision CompactionScheduler::Admit(const model::StepTimes& profile,
                                             uint64_t advisor_jobs) {
  std::lock_guard<std::mutex> lock(mu_);
  decisions_++;
  if (!opts_.adaptive) {
    last_rationale_ = "adaptive_compaction off; static choice";
    return Render(current_, /*adaptive=*/false, last_rationale_);
  }
  if (advisor_jobs < uint64_t(opts_.warmup_jobs)) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "warming up: advisor has %llu of %d jobs; static choice",
                  static_cast<unsigned long long>(advisor_jobs),
                  opts_.warmup_jobs);
    last_rationale_ = buf;
    return Render(current_, /*adaptive=*/false, last_rationale_);
  }

  std::string why;
  const Choice target = Target(profile, &why);
  if (target == current_) {
    candidate_streak_ = 0;
    last_rationale_ = why;
    return Render(current_, /*adaptive=*/true, last_rationale_);
  }

  if (candidate_streak_ > 0 && target == candidate_) {
    candidate_streak_++;
  } else {
    candidate_ = target;
    candidate_streak_ = 1;
  }
  if (candidate_streak_ >= opts_.hysteresis_jobs) {
    current_ = candidate_;
    candidate_streak_ = 0;
    switches_++;
    if (switches_counter_ != nullptr) switches_counter_->Add();
    last_rationale_ = why;
    return Render(current_, /*adaptive=*/true, last_rationale_);
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "holding %s: %s(r=%d,c=%d) prescribed %d/%d consecutive "
                "admissions",
                CompactionModeName(current_.mode),
                CompactionModeName(candidate_.mode),
                candidate_.read_parallelism, candidate_.compute_parallelism,
                candidate_streak_, opts_.hysteresis_jobs);
  last_rationale_ = buf;
  return Render(current_, /*adaptive=*/true, last_rationale_);
}

uint64_t CompactionScheduler::decisions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return decisions_;
}

uint64_t CompactionScheduler::switches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return switches_;
}

std::string CompactionScheduler::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  char buf[256];
  std::string out = "{";
  std::snprintf(buf, sizeof(buf),
                "\"adaptive\":%s,\"decisions\":%llu,\"switches\":%llu,",
                opts_.adaptive ? "true" : "false",
                static_cast<unsigned long long>(decisions_),
                static_cast<unsigned long long>(switches_));
  out.append(buf);
  std::snprintf(buf, sizeof(buf),
                "\"current\":{\"procedure\":\"%s\",\"read_parallelism\":%d,"
                "\"compute_parallelism\":%d},",
                CompactionModeName(current_.mode), current_.read_parallelism,
                current_.compute_parallelism);
  out.append(buf);
  if (candidate_streak_ > 0) {
    std::snprintf(buf, sizeof(buf),
                  "\"candidate\":{\"procedure\":\"%s\","
                  "\"read_parallelism\":%d,\"compute_parallelism\":%d,"
                  "\"streak\":%d,\"needed\":%d},",
                  CompactionModeName(candidate_.mode),
                  candidate_.read_parallelism,
                  candidate_.compute_parallelism, candidate_streak_,
                  opts_.hysteresis_jobs);
    out.append(buf);
  }
  std::snprintf(
      buf, sizeof(buf),
      "\"bounds\":{\"compute_workers\":[%d,%d],\"stripe_width\":[%d,%d]},"
      "\"hysteresis_jobs\":%d,\"warmup_jobs\":%d,",
      opts_.min_compute_workers, opts_.max_compute_workers,
      opts_.min_stripe_width, opts_.max_stripe_width, opts_.hysteresis_jobs,
      opts_.warmup_jobs);
  out.append(buf);
  out.append("\"rationale\":\"");
  AppendEscaped(&out, last_rationale_);
  out.append("\"}");
  return out;
}

}  // namespace pipelsm
