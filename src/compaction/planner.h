// Sub-task planner: partitions a compaction's key range into sub-key
// ranges of roughly subtask_bytes of input each (paper §III-B: "PCP
// partitions the compaction key range into multiple sub-key ranges; each
// sub-key range consists of one or more data blocks").
//
// Boundaries are drawn at data-block separator keys, truncated to user
// keys, so every version of a user key lands in exactly one sub-task and
// the merge's shadowing/tombstone logic stays sub-task-local.
#pragma once

#include <memory>
#include <vector>

#include "src/compaction/types.h"

namespace pipelsm {

class Table;

// Fills *plans from the index blocks of `inputs`. Tables must all be open
// for the planner (and later the executor) to read. Sub-task sequence
// numbers are assigned in key order starting at 0.
Status PlanSubTasks(const CompactionJobOptions& options,
                    const std::vector<std::shared_ptr<Table>>& inputs,
                    std::vector<SubTaskPlan>* plans);

}  // namespace pipelsm
