#include "src/compaction/steps.h"

#include <algorithm>
#include <thread>

#include "src/table/block.h"
#include "src/table/block_builder.h"
#include "src/table/filter_policy.h"
#include "src/table/table.h"
#include "src/util/coding.h"
#include "src/util/crc32c.h"

namespace pipelsm {

Status ReadSubTask(const CompactionJobOptions& options,
                   const std::vector<std::shared_ptr<Table>>& inputs,
                   SubTaskPlan plan, RawSubTask* out, StepProfile* profile) {
  out->plan = std::move(plan);
  out->blocks.clear();
  out->blocks.resize(out->plan.blocks.size());

  Stopwatch sw;
  uint64_t bytes = 0;

  // Coalesce contiguous blocks of the same table into one large read —
  // the paper's S1 issues sub-task-sized I/Os, not per-block ones
  // ("the I/O size is equal to the sub-task size", §IV-C). Blocks within
  // a table are laid out back to back, so runs coalesce naturally.
  size_t i = 0;
  const auto& brs = out->plan.blocks;
  while (i < brs.size()) {
    const int table = brs[i].table_index;
    if (table < 0 || table >= static_cast<int>(inputs.size())) {
      return Status::InvalidArgument("sub-task references unknown table");
    }
    size_t j = i + 1;
    uint64_t end =
        brs[i].handle.offset() + brs[i].handle.size() + kBlockTrailerSize;
    while (options.coalesce_reads && j < brs.size() &&
           brs[j].table_index == table && brs[j].handle.offset() == end) {
      end += brs[j].handle.size() + kBlockTrailerSize;
      j++;
    }

    const uint64_t start = brs[i].handle.offset();
    std::string extent;
    Status s = inputs[table]->ReadExtent(start, end - start, &extent);
    if (!s.ok()) return s;
    bytes += extent.size();

    // Slice the extent back into per-block payloads (trailer included).
    for (size_t k = i; k < j; k++) {
      const uint64_t off = brs[k].handle.offset() - start;
      const uint64_t len = brs[k].handle.size() + kBlockTrailerSize;
      out->blocks[k].handle = brs[k].handle;
      out->blocks[k].payload.assign(extent.data() + off, len);
    }
    i = j;
  }
  profile->AddStep(kStepRead, sw.ElapsedNanos(), bytes);
  return Status::OK();
}

namespace {

// Forward-only cursor over one input table's run of decoded blocks within
// a sub-task. Blocks of one table are disjoint and sorted, so chaining
// their iterators yields that table's sorted entries.
class ChainCursor {
 public:
  ChainCursor(const Comparator* icmp, std::vector<std::unique_ptr<Block>> blocks)
      : icmp_(icmp), blocks_(std::move(blocks)) {
    Advance();
  }

  bool Valid() const { return iter_ != nullptr && iter_->Valid(); }
  Slice key() const { return iter_->key(); }
  Slice value() const { return iter_->value(); }

  void Next() {
    iter_->Next();
    if (!iter_->Valid() && iter_->status().ok()) Advance();
  }

  Status status() const {
    return iter_ != nullptr ? iter_->status() : Status::OK();
  }

 private:
  // Position on the first non-empty remaining block (or stop on error).
  void Advance() {
    iter_.reset();
    while (next_block_ < blocks_.size()) {
      iter_.reset(blocks_[next_block_++]->NewIterator(icmp_));
      iter_->SeekToFirst();
      if (iter_->Valid() || !iter_->status().ok()) return;
      iter_.reset();
    }
  }

  const Comparator* icmp_;
  std::vector<std::unique_ptr<Block>> blocks_;
  size_t next_block_ = 0;
  std::unique_ptr<Iterator> iter_;
};

// Finalizes one raw output block: S5 compress + S6 checksum trailer.
void EncodeOutputBlock(const CompactionJobOptions& options, const Slice& raw,
                       EncodedBlock* out, StepProfile* profile) {
  std::string compressed;
  Stopwatch sw;
  const CompressionType type =
      CompressBlock(options.compression, raw, &compressed);
  profile->AddStep(kStepCompress, sw.ElapsedNanos(), raw.size());

  sw.Restart();
  out->payload = std::move(compressed);
  char trailer[kBlockTrailerSize];
  trailer[0] = static_cast<char>(type);
  uint32_t crc = crc32c::Value(out->payload.data(), out->payload.size());
  crc = crc32c::Extend(crc, trailer, 1);
  EncodeFixed32(trailer + 1, crc32c::Mask(crc));
  out->payload.append(trailer, kBlockTrailerSize);
  profile->AddStep(kStepRechecksum, sw.ElapsedNanos(), out->payload.size());
  out->raw_size = raw.size();
}

}  // namespace

Status ComputeSubTask(const CompactionJobOptions& options, RawSubTask raw,
                      ComputedSubTask* out) {
  const InternalKeyComparator* icmp = options.icmp;
  const Comparator* ucmp = icmp->user_comparator();
  const SubTaskPlan& plan = raw.plan;

  out->seq = plan.seq;
  out->blocks.clear();
  out->entries = 0;
  out->input_bytes = plan.input_bytes;
  out->output_raw_bytes = 0;
  StepProfile* profile = &out->profile;
  profile->subtasks = 1;

  // ---- S2: CHECKSUM — verify every raw block's trailer. ----
  {
    Stopwatch sw;
    uint64_t bytes = 0;
    for (const RawBlock& rb : raw.blocks) {
      Status s = VerifyRawBlock(rb);
      if (!s.ok()) return s;
      bytes += rb.payload.size();
    }
    profile->AddStep(kStepChecksum, sw.ElapsedNanos(), bytes);
  }

  // ---- S3: DECOMPRESS — restore the original key-value blocks. ----
  // Decoded contents are grouped per input table, preserving block order,
  // so each table contributes one sorted run to the merge.
  std::vector<std::vector<std::unique_ptr<Block>>> runs;
  {
    Stopwatch sw;
    uint64_t bytes = 0;
    int max_table = -1;
    for (const BlockRead& br : plan.blocks) {
      max_table = std::max(max_table, br.table_index);
    }
    runs.resize(max_table + 1);
    for (size_t i = 0; i < raw.blocks.size(); i++) {
      std::string contents;
      Status s = DecodeRawBlock(raw.blocks[i], &contents);
      if (!s.ok()) return s;
      bytes += contents.size();
      // Hand the decoded bytes to a Block that owns them.
      char* buf = new char[contents.size()];
      std::memcpy(buf, contents.data(), contents.size());
      BlockContents bc;
      bc.data = Slice(buf, contents.size());
      bc.heap_allocated = true;
      bc.cachable = false;
      runs[plan.blocks[i].table_index].emplace_back(new Block(bc));
    }
    profile->AddStep(kStepDecompress, sw.ElapsedNanos(), bytes);
  }

  // ---- S4: SORT — k-way merge with shadowing/tombstone dropping. ----
  // ---- S5/S6 run per output block inside EncodeOutputBlock. ----
  {
    Stopwatch sort_sw;
    uint64_t sort_ns = 0;
    uint64_t merged_bytes = 0;

    std::vector<std::unique_ptr<ChainCursor>> cursors;
    for (auto& run : runs) {
      if (!run.empty()) {
        cursors.emplace_back(new ChainCursor(icmp, std::move(run)));
      }
    }

    BlockBuilder builder(options.block_restart_interval);
    std::string first_block_key;
    std::string last_block_key;
    uint64_t block_entries = 0;
    std::vector<std::string> block_key_storage;  // for the filter policy
    std::string current_user_key;
    bool has_current_user_key = false;
    bool first_occurrence = true;  // no newer version of this key seen yet
    SequenceNumber last_sequence_for_key = kMaxSequenceNumber;

    auto flush_block = [&]() {
      if (builder.empty()) return;
      // S4 time has been accumulating; pause it across S5/S6.
      sort_ns += sort_sw.ElapsedNanos();
      EncodedBlock eb;
      Slice raw_block = builder.Finish();
      eb.first_key = first_block_key;
      eb.last_key = last_block_key;
      eb.entries = block_entries;
      if (options.filter_policy != nullptr && !block_key_storage.empty()) {
        std::vector<Slice> keys(block_key_storage.begin(),
                                block_key_storage.end());
        options.filter_policy->CreateFilter(
            keys.data(), keys.size(), &eb.filter);
      }
      block_key_storage.clear();
      EncodeOutputBlock(options, raw_block, &eb, profile);
      out->output_raw_bytes += eb.raw_size;
      out->blocks.push_back(std::move(eb));
      builder.Reset();
      block_entries = 0;
      sort_sw.Restart();
    };

    while (true) {
      // Pick the smallest current key among the table runs.
      ChainCursor* best = nullptr;
      for (auto& c : cursors) {
        if (c->Valid()) {
          if (best == nullptr ||
              icmp->Compare(c->key(), best->key()) < 0) {
            best = c.get();
          }
        }
      }
      if (best == nullptr) break;

      Slice key = best->key();
      ParsedInternalKey parsed;
      if (!ParseInternalKey(key, &parsed)) {
        return Status::Corruption("compaction: unparsable internal key");
      }

      // Range filter: only user keys in (lo, hi] belong to this sub-task.
      bool in_range = true;
      if (!plan.unbounded_lo &&
          ucmp->Compare(parsed.user_key, plan.lo_user_key) <= 0) {
        in_range = false;
      }
      if (in_range && !plan.unbounded_hi &&
          ucmp->Compare(parsed.user_key, plan.hi_user_key) > 0) {
        in_range = false;
      }

      bool drop = !in_range;
      if (in_range) {
        if (!has_current_user_key ||
            ucmp->Compare(parsed.user_key, current_user_key) != 0) {
          // First occurrence of this user key.
          current_user_key.assign(parsed.user_key.data(),
                                  parsed.user_key.size());
          has_current_user_key = true;
          first_occurrence = true;
          last_sequence_for_key = kMaxSequenceNumber;
        }

        if (!first_occurrence &&
            last_sequence_for_key <= options.smallest_snapshot) {
          // Hidden by a newer entry for the same user key.
          drop = true;
        } else if (parsed.type == kTypeDeletion &&
                   parsed.sequence <= options.smallest_snapshot &&
                   plan.drop_deletions) {
          // A tombstone with no data below it and no snapshot that could
          // still observe the deleted key: drop it.
          drop = true;
        }
        last_sequence_for_key = parsed.sequence;
        first_occurrence = false;
      }

      if (drop && in_range && options.on_drop_entry) {
        options.on_drop_entry(parsed.type, best->value());
      }

      if (!drop) {
        if (out->entries == 0) {
          out->smallest_key.assign(key.data(), key.size());
        }
        if (builder.empty()) {
          first_block_key.assign(key.data(), key.size());
        }
        builder.Add(key, best->value());
        block_entries++;
        if (options.filter_policy != nullptr) {
          block_key_storage.emplace_back(key.data(), key.size());
        }
        last_block_key.assign(key.data(), key.size());
        out->largest_key.assign(key.data(), key.size());
        out->entries++;
        merged_bytes += key.size() + best->value().size();
        if (builder.CurrentSizeEstimate() >= options.block_size) {
          flush_block();
        }
      }

      best->Next();
      if (!best->status().ok()) return best->status();
    }
    flush_block();
    sort_ns += sort_sw.ElapsedNanos();
    profile->AddStep(kStepSort, sort_ns, merged_bytes);
  }

  if (options.time_dilation > 1.0) {
    // Slow-motion mode: stretch this sub-task's compute phase uniformly.
    // The extra time is spent sleeping, so concurrent compute workers
    // overlap even on a single physical core.
    const uint64_t real_ns = profile->ComputeNanos();
    const uint64_t extra =
        static_cast<uint64_t>(real_ns * (options.time_dilation - 1.0));
    std::this_thread::sleep_for(std::chrono::nanoseconds(extra));
    for (CompactionStep s : {kStepChecksum, kStepDecompress, kStepSort,
                             kStepCompress, kStepRechecksum}) {
      profile->nanos[s] = static_cast<uint64_t>(profile->nanos[s] *
                                                options.time_dilation);
    }
  }

  return Status::OK();
}

DeviceProfile DilatedProfile(DeviceProfile profile, double dilation) {
  if (dilation > 1.0) {
    profile.read_position_us *= dilation;
    profile.write_position_us *= dilation;
    profile.read_bw_bps /= dilation;
    profile.write_bw_bps /= dilation;
    profile.name += "-x" + std::to_string(static_cast<int>(dilation));
  }
  return profile;
}

}  // namespace pipelsm
