#include "src/compaction/write_stage.h"

#include <cassert>

#include "src/obs/trace.h"

namespace pipelsm {

WriteStage::WriteStage(const CompactionJobOptions& options,
                       CompactionSink* sink)
    : options_(options), sink_(sink) {}

WriteStage::~WriteStage() {
  // A failed compaction may abandon an open output; drop it quietly (the
  // driver deletes orphaned files).
  if (file_ != nullptr) {
    file_->Close();
  }
}

Status WriteStage::PushReordered(ComputedSubTask task) {
  pending_.emplace(task.seq, std::move(task));
  Status s;
  while (s.ok()) {
    auto it = pending_.find(next_seq_);
    if (it == pending_.end()) break;
    ComputedSubTask next = std::move(it->second);
    pending_.erase(it);
    s = WriteOrdered(next);
    next_seq_++;
  }
  return s;
}

Status WriteStage::WriteOrdered(ComputedSubTask& task) {
  // The span covers the real device writes of this sub-task; a sub-task
  // that sat in the reorder buffer gets its span only now, when S7
  // actually consumes it (so traces show true write-lane occupancy).
  obs::TraceSpan span(options_.trace, options_.trace_pid,
                      options_.trace_write_lane, "S7 write", "write",
                      task.seq);
  for (EncodedBlock& block : task.blocks) {
    Status s = RotateIfNeeded();
    if (!s.ok()) return s;

    if (!have_current_) {
      uint64_t number;
      s = sink_->NewOutputFile(&number, &file_);
      if (!s.ok()) return s;
      writer_.reset(new RawTableWriter(options_, file_.get()));
      current_ = OutputMeta{};
      current_.file_number = number;
      have_current_ = true;
    }

    if (current_.entries == 0) {
      // First block of this output file: its first key is the file's
      // smallest key.
      current_.smallest.DecodeFrom(block.first_key);
    }
    Stopwatch sw;
    s = writer_->AddBlock(block);
    profile_.AddStep(kStepWrite, sw.ElapsedNanos(), block.payload.size());
    if (!s.ok()) return s;
    current_.entries += block.entries;
    current_.largest.DecodeFrom(block.last_key);
  }
  profile_.subtasks += 1;
  return Status::OK();
}

Status WriteStage::RotateIfNeeded() {
  if (have_current_ && writer_ != nullptr &&
      writer_->FileSize() >= options_.max_output_file_size) {
    return FinishCurrentFile();
  }
  return Status::OK();
}

Status WriteStage::FinishCurrentFile() {
  if (!have_current_) return Status::OK();
  obs::TraceSpan span(options_.trace, options_.trace_pid,
                      options_.trace_write_lane, "S7 finish file", "write");
  Stopwatch sw;
  Status s = writer_->Finish();
  if (s.ok()) {
    s = file_->Sync();
  }
  if (s.ok()) {
    s = file_->Close();
  }
  profile_.AddStep(kStepWrite, sw.ElapsedNanos(), 0);
  if (!s.ok()) return s;
  current_.file_size = writer_->FileSize();
  sink_->OutputFinished(current_);
  writer_.reset();
  file_.reset();
  have_current_ = false;
  return Status::OK();
}

Status WriteStage::Close() {
  assert(!closed_);
  closed_ = true;
  if (!pending_.empty()) {
    return Status::Corruption("write stage closed with reordering gaps");
  }
  return FinishCurrentFile();
}

}  // namespace pipelsm
