// CompactionPicker: the policy axis of compaction (docs/COMPACTION.md).
//
// The executors (src/compaction/executor.h) decide HOW one job runs —
// sequentially, pipelined, storage- or computation-parallel. The picker
// decides WHICH files form a job and where the output lands, which
// Sarkar et al. ("Constructing and Analyzing the LSM Compaction Design
// Space", PAPERS.md) show dominates write amplification per workload:
//
//   LeveledCompactionPicker       LevelDB's size-ratio policy: one
//                                 sorted run per level, spills merge
//                                 with the overlapping next-level files.
//   TieredCompactionPicker        up to Options::tiered_run_count
//                                 overlapping runs per level; a full
//                                 level merges into ONE new run at the
//                                 next level without touching resident
//                                 data (write-amp ~1 per level). The
//                                 last level self-merges in place.
//   LazyLevelingCompactionPicker  Dostoevsky's hybrid: tiered above,
//                                 leveled at the largest occupied level.
//
// Every picked Compaction carries a predicted write amplification
// (total input bytes / bytes entering from the source level), reported
// through the admission request and the pipelsm.compaction property so
// the scheduler/advisor stack can reason about picker choice alongside
// executor + k.
//
// Pickers run under the DB mutex (they are called from Finalize /
// PickCompaction) and keep no per-job state of their own.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/version/version_set.h"

namespace pipelsm {

class CompactionPicker {
 public:
  explicit CompactionPicker(const Options* options) : options_(options) {}
  virtual ~CompactionPicker();

  CompactionPicker(const CompactionPicker&) = delete;
  CompactionPicker& operator=(const CompactionPicker&) = delete;

  virtual const char* Name() const = 0;
  virtual CompactionStyle Style() const = 0;

  // True when this policy installs overlapping sorted runs in levels > 0
  // (the version tree then treats every level like level-0 on the read
  // and overlap-query paths).
  virtual bool AllowsOverlappingLevels() const = 0;

  // Score `v`, filling its compaction_level_/compaction_score_ (score
  // >= 1 means a compaction is due). Called on every version install.
  virtual void ComputeScore(Version* v) const = 0;

  // Pick the next compaction from vset->current(); nullptr = none due.
  // The caller owns the result. REQUIRES: DB mutex held.
  virtual Compaction* Pick(VersionSet* vset) = 0;

 protected:
  // Friendship does not inherit, so subclasses reach Version / VersionSet
  // / Compaction internals through these base-class helpers.
  static std::vector<FileMetaData*>& Files(Version* v, int level) {
    return v->files_[level];
  }
  static VersionSet* VSet(Version* v) { return v->vset_; }
  static double Score(const Version* v) { return v->compaction_score_; }
  static int ScoreLevel(const Version* v) { return v->compaction_level_; }
  static void SetScore(Version* v, int level, double score) {
    v->compaction_level_ = level;
    v->compaction_score_ = score;
  }
  static double MaxLevelBytes(const VersionSet* vset, int level) {
    return vset->MaxBytesForLevel(level);
  }
  static const std::string& CompactPointer(VersionSet* vset, int level) {
    return vset->compact_pointer_[level];
  }
  static void SetupOtherInputs(VersionSet* vset, Compaction* c) {
    vset->SetupOtherInputs(c);
  }
  static void GetInputRange(VersionSet* vset,
                            const std::vector<FileMetaData*>& inputs,
                            InternalKey* smallest, InternalKey* largest) {
    vset->GetRange(inputs, smallest, largest);
  }
  // A Compaction pinned to vset's current version with empty inputs.
  static Compaction* MakeCompaction(VersionSet* vset, int level,
                                    int output_level);
  static void SetPredictedWriteAmp(Compaction* c, double wa) {
    c->predicted_write_amp_ = wa;
  }
  static std::vector<FileMetaData*>* MutableInputs(Compaction* c, int which) {
    return &c->inputs_[which];
  }

  const Options* const options_;
};

// Number of overlapping sorted runs in a level's file list: the maximum
// interval-stacking depth over user-key space. Disjoint files installed
// by one compaction stack to depth 1; each additional overlapping run
// adds one. Exact when runs span similar ranges, an underestimate for
// barely-overlapping partial runs — which errs toward fewer, larger
// merges. `files` must be sorted by smallest key (Version order).
int CountRuns(const InternalKeyComparator& icmp,
              const std::vector<FileMetaData*>& files);

// Factory; `options` must outlive the picker.
std::unique_ptr<CompactionPicker> NewCompactionPicker(CompactionStyle style,
                                                      const Options* options);

}  // namespace pipelsm
