#include "src/compaction/planner.h"

#include <algorithm>

#include "src/table/iterator.h"
#include "src/table/table.h"

namespace pipelsm {

namespace {

struct IndexEntry {
  int table_index;
  int block_index;
  std::string separator;  // internal key >= every key in the block
  BlockHandle handle;
};

}  // namespace

Status PlanSubTasks(const CompactionJobOptions& options,
                    const std::vector<std::shared_ptr<Table>>& inputs,
                    std::vector<SubTaskPlan>* plans) {
  plans->clear();
  if (options.icmp == nullptr) {
    return Status::InvalidArgument("planner: icmp is required");
  }
  const Comparator* ucmp = options.icmp->user_comparator();

  // Collect every table's data-block extents from its index block.
  std::vector<std::vector<IndexEntry>> per_table(inputs.size());
  std::vector<IndexEntry> all;
  for (size_t t = 0; t < inputs.size(); t++) {
    std::unique_ptr<Iterator> it(inputs[t]->NewIndexIterator());
    int block_index = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      IndexEntry e;
      e.table_index = static_cast<int>(t);
      e.block_index = block_index++;
      e.separator = it->key().ToString();
      Slice v = it->value();
      Status s = e.handle.DecodeFrom(&v);
      if (!s.ok()) return s;
      per_table[t].push_back(e);
      all.push_back(per_table[t].back());
    }
    if (!it->status().ok()) return it->status();
  }
  if (all.empty()) return Status::OK();

  // Walk block extents in merged key order; cut a boundary whenever the
  // accumulated input reaches subtask_bytes. Boundaries are user keys and
  // must strictly increase.
  std::sort(all.begin(), all.end(),
            [&](const IndexEntry& a, const IndexEntry& b) {
              int c = options.icmp->Compare(a.separator, b.separator);
              if (c != 0) return c < 0;
              if (a.table_index != b.table_index)
                return a.table_index < b.table_index;
              return a.block_index < b.block_index;
            });

  std::vector<std::string> boundaries;
  uint64_t acc = 0;
  for (size_t i = 0; i + 1 < all.size(); i++) {  // never cut after the last
    acc += all[i].handle.size();
    if (acc >= options.subtask_bytes) {
      Slice user = ExtractUserKey(all[i].separator);
      if (boundaries.empty() ||
          ucmp->Compare(user, boundaries.back()) > 0) {
        boundaries.push_back(user.ToString());
        acc = 0;
      }
    }
  }

  // A sub-compaction restricts the whole job to (range_lo, range_hi]:
  // keep only boundaries strictly inside the window, then pin the first
  // plan's lo and the last plan's hi to the window edges so block
  // assignment and the merge's range filter clamp to it automatically.
  if (!options.range_unbounded_lo || !options.range_unbounded_hi) {
    boundaries.erase(
        std::remove_if(
            boundaries.begin(), boundaries.end(),
            [&](const std::string& b) {
              if (!options.range_unbounded_lo &&
                  ucmp->Compare(b, options.range_lo_user_key) <= 0)
                return true;
              if (!options.range_unbounded_hi &&
                  ucmp->Compare(b, options.range_hi_user_key) >= 0)
                return true;
              return false;
            }),
        boundaries.end());
  }

  // Build the sub-task ranges: (lo, b0], (b0, b1], ..., (b_last, hi]
  // where lo/hi are the job range edges (unbounded by default).
  const size_t num_tasks = boundaries.size() + 1;
  plans->resize(num_tasks);
  for (size_t i = 0; i < num_tasks; i++) {
    SubTaskPlan& p = (*plans)[i];
    p.seq = i;
    if (i > 0) {
      p.unbounded_lo = false;
      p.lo_user_key = boundaries[i - 1];
    } else if (!options.range_unbounded_lo) {
      p.unbounded_lo = false;
      p.lo_user_key = options.range_lo_user_key;
    }
    if (i < boundaries.size()) {
      p.unbounded_hi = false;
      p.hi_user_key = boundaries[i];
    } else if (!options.range_unbounded_hi) {
      p.unbounded_hi = false;
      p.hi_user_key = options.range_hi_user_key;
    }
  }

  // Assign blocks. A block whose keys lie in (sep[k-1], sep[k]] (internal)
  // overlaps sub-range (lo, hi] iff user(sep[k]) > lo and
  // user(sep[k-1]) <= hi. Boundary blocks land in two adjacent sub-tasks;
  // the merge filters by range so nothing duplicates.
  for (size_t t = 0; t < per_table.size(); t++) {
    const auto& entries = per_table[t];
    for (size_t k = 0; k < entries.size(); k++) {
      const Slice upper_user = ExtractUserKey(entries[k].separator);
      const Slice lower_user =
          k == 0 ? Slice() : ExtractUserKey(entries[k - 1].separator);
      const bool has_lower = (k != 0);

      for (SubTaskPlan& p : *plans) {
        // Plans ascend, so above_lo holds for a prefix of plans and
        // below_hi for a suffix; the matching plans form an interval.
        const bool above_lo =
            p.unbounded_lo || ucmp->Compare(upper_user, p.lo_user_key) > 0;
        if (!above_lo) break;  // lo only grows from here on
        const bool below_hi =
            p.unbounded_hi || !has_lower ||
            ucmp->Compare(lower_user, p.hi_user_key) <= 0;
        if (!below_hi) continue;  // block starts past this plan's hi
        BlockRead br;
        br.table_index = entries[k].table_index;
        br.handle = entries[k].handle;
        p.blocks.push_back(br);
        p.input_bytes += entries[k].handle.size();
      }
    }
  }

  // Drop empty sub-tasks (possible when boundaries crowd together) and
  // resequence.
  plans->erase(std::remove_if(plans->begin(), plans->end(),
                              [](const SubTaskPlan& p) {
                                return p.blocks.empty();
                              }),
               plans->end());
  for (size_t i = 0; i < plans->size(); i++) {
    (*plans)[i].seq = i;
    (*plans)[i].drop_deletions = options.range_is_base_level
                                     ? options.range_is_base_level((*plans)[i])
                                     : true;
  }
  return Status::OK();
}

}  // namespace pipelsm
