// RawTableWriter: builds an SSTable from blocks that are ALREADY
// compressed and checksummed (the compute stage did S5/S6), so the write
// stage only appends bytes (S7) and tracks index entries. Output files are
// readable by the ordinary Table reader.
//
// If the job carries a filter policy, the compute stage ships one
// pre-built bloom filter per block; this writer stitches them into a
// standard filter block (same wire format FilterBlockBuilder emits), so
// compaction outputs keep their read-path filters without the write stage
// ever touching keys.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/compaction/types.h"
#include "src/env/env.h"
#include "src/table/block_builder.h"

namespace pipelsm {

class RawTableWriter {
 public:
  RawTableWriter(const CompactionJobOptions& options, WritableFile* file);

  RawTableWriter(const RawTableWriter&) = delete;
  RawTableWriter& operator=(const RawTableWriter&) = delete;

  // Appends a pre-encoded data block. REQUIRES: keys ascend across calls.
  Status AddBlock(const EncodedBlock& block);

  // Writes filter (if any) + metaindex + index + footer.
  Status Finish();

  uint64_t FileSize() const { return offset_; }
  uint64_t NumBlocks() const { return num_blocks_; }

 private:
  Status WriteOwnBlock(const Slice& raw, BlockHandle* handle);
  // Assembles the filter block from the per-block filters collected by
  // AddBlock (FilterBlockBuilder wire format: one window per 2 KiB of
  // data-block offsets).
  std::string BuildFilterBlock() const;

  const CompactionJobOptions options_;
  WritableFile* file_;
  uint64_t offset_ = 0;
  uint64_t num_blocks_ = 0;
  BlockBuilder index_block_;
  // (data-block offset, pre-built filter), in offset order.
  std::vector<std::pair<uint64_t, std::string>> filters_;
};

}  // namespace pipelsm
