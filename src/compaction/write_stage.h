// WriteStage: S7. Consumes ComputedSubTasks strictly in sub-task order
// (callers with out-of-order completion use PushReordered, which buffers
// until the next sequence number arrives), appends their encoded blocks to
// the current output SSTable and rotates files at max_output_file_size.
#pragma once

#include <map>
#include <memory>

#include "src/compaction/raw_table_writer.h"
#include "src/compaction/types.h"

namespace pipelsm {

class WriteStage {
 public:
  WriteStage(const CompactionJobOptions& options, CompactionSink* sink);
  ~WriteStage();

  WriteStage(const WriteStage&) = delete;
  WriteStage& operator=(const WriteStage&) = delete;

  // Consume the sub-task with the next sequence number. Out-of-order
  // sub-tasks are buffered internally (the C-PPCP case).
  Status PushReordered(ComputedSubTask task);

  // Flush the current output file and report it. Must be called once
  // after the last sub-task (fails if reordering gaps remain).
  Status Close();

  const StepProfile& profile() const { return profile_; }

 private:
  Status WriteOrdered(ComputedSubTask& task);
  Status RotateIfNeeded();
  Status FinishCurrentFile();

  const CompactionJobOptions options_;
  CompactionSink* const sink_;

  uint64_t next_seq_ = 0;
  std::map<uint64_t, ComputedSubTask> pending_;

  std::unique_ptr<WritableFile> file_;
  std::unique_ptr<RawTableWriter> writer_;
  OutputMeta current_;
  bool have_current_ = false;
  StepProfile profile_;
  bool closed_ = false;
};

}  // namespace pipelsm
