// The paper's seven compaction steps as reusable primitives.
//
// ReadSubTask performs S1 for one sub-task; ComputeSubTask performs
// S2 (CHECKSUM), S3 (DECOMPRESS), S4 (SORT/merge), S5 (COMPRESS) and
// S6 (RE-CHECKSUM), timing each step individually so the breakdown
// benches (Figs 5/8/9) and the analytic model (Eqs 1-7) share one set of
// measurements. S7 lives in write_stage.h.
#pragma once

#include <memory>
#include <vector>

#include "src/compaction/types.h"

namespace pipelsm {

class Table;

// S1: fetch the sub-task's raw blocks from the input tables, coalescing
// contiguous runs into sub-task-sized extents unless
// options.coalesce_reads is off. Records time/bytes under kStepRead in
// *profile.
Status ReadSubTask(const CompactionJobOptions& options,
                   const std::vector<std::shared_ptr<Table>>& inputs,
                   SubTaskPlan plan, RawSubTask* out, StepProfile* profile);

// S2..S6: verify, decompress, merge (dropping shadowed entries and — when
// the plan allows — tombstones), rebuild blocks, compress, re-checksum.
// Per-step times go into out->profile.
Status ComputeSubTask(const CompactionJobOptions& options, RawSubTask raw,
                      ComputedSubTask* out);

}  // namespace pipelsm
