// Shared data types of the compaction executors.
//
// One compaction merges the key range covered by a set of input tables.
// The planner partitions that range into sub-key ranges; each sub-task
// owns the user keys in (lo, hi] of its plan and flows through the
// paper's seven steps:
//
//   S1 READ        -> RawSubTask      (compressed payloads off the device)
//   S2..S6 compute -> ComputedSubTask (verified, decompressed, merged,
//                                      re-compressed, re-checksummed blocks)
//   S7 WRITE       -> output SSTables (via the ordered write stage)
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/compress/codec.h"
#include "src/db/dbformat.h"
#include "src/env/env.h"
#include "src/env/sim_device.h"
#include "src/table/format.h"
#include "src/table/table.h"
#include "src/util/status.h"
#include "src/util/stopwatch.h"

namespace pipelsm {

namespace obs {
class EventListener;
class MetricsRegistry;
class TraceCollector;
struct CompactionJobInfo;
}  // namespace obs

// One data-block extent to read for a sub-task.
struct BlockRead {
  int table_index = 0;  // which input table
  BlockHandle handle;
};

// An independent unit of compaction work: the user keys in (lo, hi].
// Empty lo = unbounded below; empty hi (with unbounded_hi) = unbounded
// above. Boundary blocks may be listed in two adjacent sub-tasks; the
// merge filters entries by the range, so output never duplicates.
struct SubTaskPlan {
  uint64_t seq = 0;           // position in key order (write order)
  std::string lo_user_key;    // exclusive lower bound
  bool unbounded_lo = true;
  std::string hi_user_key;    // inclusive upper bound
  bool unbounded_hi = true;
  std::vector<BlockRead> blocks;
  uint64_t input_bytes = 0;   // compressed payload bytes to read
  // True if no live table below the output level overlaps this range, so
  // deletion tombstones at or below the snapshot may be dropped.
  bool drop_deletions = false;
};

// S1 output: the sub-task's raw (still compressed + trailered) blocks.
struct RawSubTask {
  SubTaskPlan plan;
  std::vector<RawBlock> blocks;  // parallel to plan.blocks
};

// One output data block, fully encoded for S7: compressed payload,
// 5-byte trailer (type + masked CRC), and the exact last internal key for
// the index entry.
struct EncodedBlock {
  std::string payload;    // compressed bytes + trailer
  std::string first_key;  // internal key of the block's first entry
  std::string last_key;   // internal key of the block's final entry
  std::string filter;     // per-block bloom filter (empty if no policy)
  uint64_t raw_size = 0;
  uint64_t entries = 0;
};

// S2..S6 output for one sub-task.
struct ComputedSubTask {
  uint64_t seq = 0;
  std::vector<EncodedBlock> blocks;
  std::string smallest_key;  // internal key of first entry (if any)
  std::string largest_key;   // internal key of last entry (if any)
  uint64_t entries = 0;
  uint64_t input_bytes = 0;
  uint64_t output_raw_bytes = 0;
  StepProfile profile;  // S2..S6 timings for this sub-task
};

// Metadata of one finished output SSTable, reported through the sink.
struct OutputMeta {
  uint64_t file_number = 0;
  uint64_t file_size = 0;
  uint64_t entries = 0;
  InternalKey smallest;
  InternalKey largest;
};

// The executor's interface to whoever owns file naming and installation
// (the DB's compaction driver, or a bench harness).
class CompactionSink {
 public:
  virtual ~CompactionSink() = default;

  // Create the next output file. Must be thread-compatible with a single
  // write stage (calls are serialized by the executor).
  virtual Status NewOutputFile(uint64_t* file_number,
                               std::unique_ptr<WritableFile>* file) = 0;

  // Called once per completed output table, in key order.
  virtual void OutputFinished(const OutputMeta& meta) = 0;
};

// Per-job knobs, derived from Options by the DB (or set directly by
// benches).
struct CompactionJobOptions {
  const InternalKeyComparator* icmp = nullptr;

  // Sub-task granularity in (compressed) input bytes.
  size_t subtask_bytes = 512 * 1024;

  // Output block/table shape.
  size_t block_size = 4 * 1024;
  int block_restart_interval = 16;
  CompressionType compression = CompressionType::kLzCompression;
  uint64_t max_output_file_size = 2 * 1024 * 1024;

  // Entries older than this sequence and shadowed by a newer entry are
  // dropped; tombstones need drop_deletions as well.
  SequenceNumber smallest_snapshot = kMaxSequenceNumber;

  // Evaluated once per planned sub-task (single-threaded, at plan time):
  // may tombstones whose user keys all fall in (lo, hi] be dropped?
  // Default: yes (standalone/bench usage where there is nothing below).
  std::function<bool(const SubTaskPlan&)> range_is_base_level;

  // Key-range restriction for sub-compactions (docs/COMPACTION.md): when
  // bounded, this job covers only user keys in (range_lo, range_hi] of
  // its input tables. The planner clamps every sub-task plan to this
  // window, so the merge's existing range filter drops everything
  // outside it and neighboring sub-jobs' outputs never overlap at the
  // seams. Unbounded on both ends by default (whole-job semantics).
  bool range_unbounded_lo = true;
  bool range_unbounded_hi = true;
  std::string range_lo_user_key;
  std::string range_hi_user_key;

  // Optional: per-block bloom filters for the output tables, created in
  // the compute stage (so S7 stays write-only). Pass the same (wrapped)
  // policy the table readers use. nullptr = no filter blocks.
  const class FilterPolicy* filter_policy = nullptr;

  // Target payload size of one bloom-filter partition in the output
  // tables (docs/READ_PATH.md); mirror TableOptions::filter_partition_bytes.
  size_t filter_partition_bytes = 4096;

  // Optional: invoked for every in-range entry the merge drops (hidden
  // by a newer entry or a droppable tombstone) with the entry's type and
  // raw value bytes. Out-of-range entries are excluded — they are merely
  // this sub-task's overlap margin and get output by a neighboring
  // sub-task. The DB uses this to credit dropped kTypeValuePointer
  // entries to value-log discard statistics (docs/VALUE_LOG.md). May be
  // called from concurrent compute workers (C-PPCP) — must be
  // thread-safe.
  std::function<void(ValueType, const Slice&)> on_drop_entry;

  // Parallelism (paper §III-C): readers = S-PPCP k, computers = C-PPCP k.
  int read_parallelism = 1;
  int compute_parallelism = 1;

  // Depth of each inter-stage queue.
  size_t queue_depth = 4;

  // Ablation toggle: when false, S1 issues one device read per data block
  // instead of coalescing contiguous runs into sub-task-sized extents.
  // The paper's procedure reads at sub-task granularity; this knob
  // quantifies why (see bench_ablation).
  bool coalesce_reads = true;

  // -------- observability (src/obs, docs/OBSERVABILITY.md) --------
  // Optional registry the executor publishes run metrics into: queue
  // stall times, depth high-watermarks, per-step nanos/bytes, sub-task
  // latency histograms. Registration is idempotent, so one registry can
  // accumulate across many compactions.
  obs::MetricsRegistry* metrics = nullptr;

  // Optional trace collector; when set, every sub-task's stage spans and
  // queue-wait stalls are recorded for chrome://tracing export.
  obs::TraceCollector* trace = nullptr;

  // Optional event listeners (src/obs/event_listener.h). The executor
  // fires OnCompactionBegin once planning is done and
  // OnCompactionCompleted on every exit path — including failures, where
  // the info carries the non-ok status and whatever profile was measured.
  // Requires job_info to be set (the executor fills in executor name,
  // sub-task count, output bytes and the step profile; the caller
  // pre-fills job id, level and input files).
  const std::vector<obs::EventListener*>* listeners = nullptr;
  obs::CompactionJobInfo* job_info = nullptr;

  // Set by the executor on its own copy of the options (callers leave
  // them alone): which trace process the run belongs to and which lane
  // the write stage draws its S7 spans in.
  uint32_t trace_pid = 0;
  uint32_t trace_write_lane = 0;

  // Slow-motion factor for hosts with fewer cores than the paper's
  // testbed (see DESIGN.md §"Substitutions"). When > 1, each sub-task's
  // compute stage additionally sleeps (dilation - 1) x its real CPU time
  // and reports dilated step times, stretching the experiment's time
  // domain uniformly (pair it with a device profile slowed by the same
  // factor). Because the added time is spent sleeping, k compute workers
  // overlap genuinely even on one physical core, which is what the
  // C-PPCP scaling sweep (Fig 12 d-f) requires. Ratios between stages —
  // and therefore every speedup and crossover — are preserved.
  double time_dilation = 1.0;
};

// Returns `profile` slowed down by `dilation` (bandwidths divided,
// positioning costs multiplied) for use alongside time-dilated jobs.
DeviceProfile DilatedProfile(DeviceProfile profile, double dilation);

}  // namespace pipelsm
